"""Tests for the packetization policies (:mod:`repro.core.packetization`)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import regular_mesh_config, waw_wap_config
from repro.core.packetization import (
    MessageDescriptor,
    PacketDescriptor,
    RegularPacketizer,
    WaPPacketizer,
    make_packetizer,
)


class TestDescriptors:
    def test_message_requires_payload(self):
        with pytest.raises(ValueError):
            MessageDescriptor(payload_flits=0)

    def test_packet_index_bounds(self):
        with pytest.raises(ValueError):
            PacketDescriptor(flits=1, index=2, total=2)
        with pytest.raises(ValueError):
            PacketDescriptor(flits=0, index=0, total=1)


class TestRegularPacketizer:
    def test_single_packet_when_message_fits(self):
        packetizer = RegularPacketizer(regular_mesh_config(4, max_packet_flits=4))
        packets = packetizer.packetize(MessageDescriptor(payload_flits=4, kind="reply"))
        assert len(packets) == 1
        assert packets[0].flits == 4
        assert packets[0].kind == "reply"

    def test_message_larger_than_max_is_split(self):
        packetizer = RegularPacketizer(regular_mesh_config(4, max_packet_flits=4))
        packets = packetizer.packetize(MessageDescriptor(payload_flits=10))
        assert [p.flits for p in packets] == [4, 4, 2]
        assert [p.index for p in packets] == [0, 1, 2]
        assert all(p.total == 3 for p in packets)

    def test_no_overhead(self):
        packetizer = RegularPacketizer(regular_mesh_config(4, max_packet_flits=8))
        msg = MessageDescriptor(payload_flits=6)
        assert packetizer.total_flits(msg) == 6
        assert packetizer.overhead_flits(msg) == 0

    def test_l1_network_splits_reply_into_four_packets(self):
        """With a 1-flit maximum packet size, a cache-line reply is 4 packets."""
        packetizer = RegularPacketizer(regular_mesh_config(8, max_packet_flits=1))
        packets = packetizer.packetize(MessageDescriptor(payload_flits=4))
        assert len(packets) == 4
        assert all(p.flits == 1 for p in packets)

    @given(payload=st.integers(1, 40), max_flits=st.integers(1, 10))
    @settings(max_examples=60)
    def test_flit_conservation(self, payload, max_flits):
        packetizer = RegularPacketizer(regular_mesh_config(4, max_packet_flits=max_flits))
        packets = packetizer.packetize(MessageDescriptor(payload_flits=payload))
        assert sum(p.flits for p in packets) == payload
        assert all(1 <= p.flits <= max_flits for p in packets)


class TestWaPPacketizer:
    def test_paper_overhead_example(self):
        """A 512-bit cache line over 132-bit flits becomes 5 one-flit packets.

        This is the paper's 25 % overhead example (512+5*16 bits over a
        132-bit channel).
        """
        config = waw_wap_config(8, max_packet_flits=4)
        packetizer = WaPPacketizer(config)
        packets = packetizer.packetize(MessageDescriptor(payload_flits=4, kind="reply"))
        assert len(packets) == 5
        assert all(p.flits == 1 for p in packets)
        assert packetizer.overhead_flits(MessageDescriptor(payload_flits=4)) == 1

    def test_single_flit_requests_pay_no_overhead(self):
        """The origin of the negligible average degradation: loads are 1 flit."""
        packetizer = WaPPacketizer(waw_wap_config(8))
        packets = packetizer.packetize(MessageDescriptor(payload_flits=1, kind="load"))
        assert len(packets) == 1
        assert packets[0].flits == 1
        assert packetizer.overhead_flits(MessageDescriptor(payload_flits=1)) == 0

    def test_all_packets_have_minimum_size(self):
        config = waw_wap_config(8, max_packet_flits=8)
        packetizer = WaPPacketizer(config)
        for payload in range(1, 12):
            for packet in packetizer.packetize(MessageDescriptor(payload_flits=payload)):
                assert packet.flits == config.min_packet_flits

    def test_packet_indices_are_sequential(self):
        packetizer = WaPPacketizer(waw_wap_config(8))
        packets = packetizer.packetize(MessageDescriptor(payload_flits=8))
        assert [p.index for p in packets] == list(range(len(packets)))
        assert all(p.total == len(packets) for p in packets)

    @given(payload=st.integers(1, 32))
    @settings(max_examples=50)
    def test_wap_never_loses_payload_capacity(self, payload):
        """The WaP slices always provide at least the payload's bit capacity."""
        config = waw_wap_config(8)
        messages = config.messages
        packetizer = WaPPacketizer(config)
        packets = packetizer.packetize(MessageDescriptor(payload_flits=payload))
        if payload == 1:
            assert len(packets) == 1
            return
        payload_bits = payload * messages.link_width_bits - messages.control_bits
        capacity = len(packets) * (messages.link_width_bits - messages.control_bits)
        assert capacity >= payload_bits

    @given(payload=st.integers(2, 32))
    @settings(max_examples=50)
    def test_wap_overhead_is_bounded(self, payload):
        """WaP adds at most ~one control flit per original payload flit."""
        packetizer = WaPPacketizer(waw_wap_config(8))
        msg = MessageDescriptor(payload_flits=payload)
        assert 0 <= packetizer.overhead_flits(msg) <= payload


class TestFactory:
    def test_factory_selects_policy(self):
        assert isinstance(make_packetizer(regular_mesh_config(4)), RegularPacketizer)
        assert isinstance(make_packetizer(waw_wap_config(4)), WaPPacketizer)

    def test_wap_and_regular_agree_on_single_flit_messages(self):
        regular = make_packetizer(regular_mesh_config(4))
        wap = make_packetizer(waw_wap_config(4))
        msg = MessageDescriptor(payload_flits=1)
        assert regular.total_flits(msg) == wap.total_flits(msg) == 1
