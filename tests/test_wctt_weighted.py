"""Tests for the WaW+WaP WCTT analysis (:mod:`repro.core.wctt_weighted`)."""

from __future__ import annotations

import pytest

from repro.core.config import regular_mesh_config, waw_wap_config
from repro.core.flows import FlowSet
from repro.core.wctt import make_wctt_analysis, wctt_map, wctt_summary
from repro.core.wctt_regular import RegularMeshWCTTAnalysis
from repro.core.wctt_weighted import WaWWaPWCTTAnalysis
from repro.core.weights import WeightTable
from repro.geometry import Coord, Port


def memory_analysis(size: int, *, flits: int = 1) -> WaWWaPWCTTAnalysis:
    return WaWWaPWCTTAnalysis.for_memory_traffic(
        waw_wap_config(size, max_packet_flits=flits), include_replies=False
    )


class TestConstruction:
    def test_requires_waw_wap_configuration(self):
        with pytest.raises(ValueError):
            WaWWaPWCTTAnalysis(regular_mesh_config(4))

    def test_default_weights_are_closed_form(self):
        analysis = WaWWaPWCTTAnalysis(waw_wap_config(4))
        assert analysis.weights.output_round_flits(Coord(0, 0), Port.LOCAL) == 15

    def test_memory_traffic_constructor_uses_flow_weights(self):
        analysis = memory_analysis(8)
        assert analysis.weights.output_round_flits(Coord(0, 0), Port.LOCAL) == 63

    def test_factory_dispatch(self):
        assert isinstance(make_wctt_analysis(waw_wap_config(4)), WaWWaPWCTTAnalysis)
        assert isinstance(make_wctt_analysis(regular_mesh_config(4)), RegularMeshWCTTAnalysis)


class TestPacketBounds:
    def test_rejects_self_flow(self):
        with pytest.raises(ValueError):
            memory_analysis(4).wctt_packet(Coord(1, 1), Coord(1, 1))

    def test_rejects_oversized_packets(self):
        with pytest.raises(ValueError):
            memory_analysis(4).wctt_packet(Coord(1, 1), Coord(0, 0), packet_flits=4)

    def test_bound_exceeds_zero_load(self):
        a = memory_analysis(8)
        for src in [Coord(1, 0), Coord(4, 4), Coord(7, 7)]:
            assert a.wctt_packet(src, Coord(0, 0)) > a.zero_load_latency(src, Coord(0, 0))

    def test_bound_is_sum_of_hop_delays(self):
        a = memory_analysis(4)
        src, dst = Coord(3, 3), Coord(0, 0)
        assert a.wctt_packet(src, dst) == sum(b.delay for b in a.hop_breakdowns(src, dst))

    def test_hop_breakdowns_follow_the_route(self):
        a = memory_analysis(4)
        breakdowns = a.hop_breakdowns(Coord(2, 2), Coord(0, 0))
        assert breakdowns[0].router == Coord(2, 2)
        assert breakdowns[-1].router == Coord(0, 0)
        assert breakdowns[-1].out_port is Port.LOCAL
        assert all(b.delay > 0 for b in breakdowns)

    def test_growth_is_polynomial_not_exponential(self):
        """Doubling the mesh size must not blow the bound up by orders of magnitude."""
        maxima = {}
        for size in (4, 8):
            a = memory_analysis(size)
            far = Coord(size - 1, size - 1)
            maxima[size] = a.wctt_packet(far, Coord(0, 0))
        assert maxima[8] < 10 * maxima[4]

    def test_uniformity_across_flows(self):
        """WaW+WaP keeps all flows within a small factor of each other (8x8)."""
        a = memory_analysis(8)
        flows = FlowSet.all_to_one(a.mesh, Coord(0, 0))
        summary = wctt_summary(a, flows, packet_flits=1)
        assert summary.maximum / summary.minimum < 10
        # The paper's Table II max/min ratio at 8x8 is 310/127 ~ 2.4; ours
        # stays in the same qualitative band (single digits, not thousands).

    def test_beats_regular_mesh_for_distant_flows(self):
        """The proposal's entire point: distant flows get far better bounds."""
        size = 8
        waw = memory_analysis(size)
        regular = make_wctt_analysis(regular_mesh_config(size, max_packet_flits=1))
        far = Coord(size - 1, size - 1)
        assert waw.wctt_packet(far, Coord(0, 0)) * 100 < regular.wctt_packet(
            far, Coord(0, 0), packet_flits=1
        )

    def test_may_lose_to_regular_mesh_next_to_the_destination(self):
        """Nodes adjacent to the MC can be slightly worse off (paper Table III)."""
        size = 8
        waw = memory_analysis(size)
        regular = make_wctt_analysis(regular_mesh_config(size, max_packet_flits=1))
        near = Coord(1, 0)
        assert waw.wctt_packet(near, Coord(0, 0)) > regular.wctt_packet(
            near, Coord(0, 0), packet_flits=1
        )


class TestMessageBounds:
    def test_single_flit_message_equals_packet_bound(self):
        a = memory_analysis(4)
        src, dst = Coord(3, 3), Coord(0, 0)
        assert a.wctt_message(src, dst, payload_flits=1) == a.wctt_packet(src, dst)

    def test_cache_line_reply_is_five_slices(self):
        a = memory_analysis(8)
        src, dst = Coord(0, 0), Coord(5, 5)
        first = a.wctt_packet(src, dst)
        round_ = a.bottleneck_round(src, dst)
        assert a.wctt_message(src, dst, payload_flits=4) == first + 4 * round_

    def test_bottleneck_round_is_largest_port_round(self):
        a = memory_analysis(8)
        src, dst = Coord(7, 7), Coord(0, 0)
        rounds = [a.round_flits(h.router, h.out_port) for h in a.route(src, dst)]
        assert a.bottleneck_round(src, dst) == max(rounds)

    def test_message_bound_grows_with_payload(self):
        a = memory_analysis(4)
        src, dst = Coord(3, 3), Coord(0, 0)
        values = [a.wctt_message(src, dst, payload_flits=p) for p in (1, 4, 8, 16)]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_invalid_payload_rejected(self):
        with pytest.raises(ValueError):
            memory_analysis(4).wctt_message(Coord(1, 1), Coord(0, 0), payload_flits=0)


class TestIndependenceFromMaxPacketSize:
    def test_bound_does_not_depend_on_max_packet_size(self):
        """The key WaP property: contenders cannot hold ports for L flits."""
        src, dst = Coord(7, 7), Coord(0, 0)
        bounds = []
        for flits in (1, 4, 8):
            bounds.append(memory_analysis(8, flits=flits).wctt_packet(src, dst))
        assert bounds[0] == bounds[1] == bounds[2]

    def test_regular_bound_does_depend_on_max_packet_size(self):
        src, dst = Coord(7, 7), Coord(0, 0)
        small = make_wctt_analysis(regular_mesh_config(8, max_packet_flits=1))
        large = make_wctt_analysis(regular_mesh_config(8, max_packet_flits=8))
        assert large.wctt_packet(src, dst, packet_flits=1) > small.wctt_packet(
            src, dst, packet_flits=1
        )


class TestWcttMap:
    def test_map_covers_every_node_but_the_destination(self):
        a = memory_analysis(4)
        mapping = wctt_map(a, Coord(0, 0))
        assert len(mapping) == 15
        assert Coord(0, 0) not in mapping
        assert all(v > 0 for v in mapping.values())

    def test_map_with_custom_weight_table(self):
        config = waw_wap_config(4)
        table = WeightTable.from_closed_form(config.mesh)
        a = WaWWaPWCTTAnalysis(config, table)
        mapping = wctt_map(a, Coord(3, 3))
        assert len(mapping) == 15
