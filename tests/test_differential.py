"""Differential testing: the event-driven backend vs the cycle-accurate one.

The event-driven backend promises *bit-identical* results: per-message
latencies, flit counts and makespans must match the cycle-accurate reference
exactly, never approximately.  This suite enforces the promise over a grid
of (topology x routing x design x packet size x workload) scenarios at the
network level and over manycore workloads (EEMBC-like profiles, parallel
kernels, cached traces) at the system level, plus the two simulating
experiments end to end.

Every comparison goes through a *snapshot*: an exhaustive, order-insensitive
summary of everything a simulation run produced (message timing records,
per-router forwarded-flit counters, per-NIC injected/ejected counters,
per-core execution counters, final cycle).  Two runs are considered equal
only when their snapshots are equal.
"""

from __future__ import annotations

import pytest

from repro.api import Scenario
from repro.geometry import Coord
from repro.manycore.placement import Placement
from repro.manycore.system import ManycoreSystem
from repro.noc.network import Network
from repro.workloads.eembc import autobench_profile, autobench_suite
from repro.workloads.parallel import ParallelWorkload
from repro.workloads.synthetic import UniformRandomTraffic

BACKENDS = ("cycle", "event")


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------
def network_snapshot(network: Network) -> dict:
    """Everything observable about a finished network run, order-insensitive."""
    messages = sorted(
        (
            message.source.x,
            message.source.y,
            message.destination.x,
            message.destination.y,
            message.kind,
            message.payload_flits,
            message.created_cycle,
            message.injection_cycle,
            message.completion_cycle,
        )
        for message in network.stats.messages
    )
    return {
        "final_cycle": network.cycle,
        "sent": network.stats.sent_messages,
        "completed": network.stats.completed_messages,
        "messages": messages,
        "injected_flits": network.total_injected_flits(),
        "ejected_flits": network.total_ejected_flits(),
        "per_router_forwarded": {
            str(coord): router.forwarded_flits for coord, router in network.routers.items()
        },
        "per_nic_flits": {
            str(coord): (nic.injected_flits, nic.ejected_flits)
            for coord, nic in network.nics.items()
        },
    }


def system_snapshot(system: ManycoreSystem, cycles: int) -> dict:
    """Everything observable about a finished manycore run."""
    return {
        "cycles": cycles,
        "makespan": system.makespan(),
        "per_core": {
            str(node): (
                core.issued_loads,
                core.issued_evictions,
                core.completed_loads,
                core.stall_cycles,
                core.compute_cycles,
                core.start_cycle,
                core.finish_cycle,
            )
            for node, core in system.cores.items()
        },
        "served": (
            system.memory_controller.served_loads,
            system.memory_controller.served_evictions,
        ),
        "network": network_snapshot(system.network),
    }


# ----------------------------------------------------------------------
# Network-level scenario grid: topology x routing x design x packet size
# ----------------------------------------------------------------------
def _scenario(topology: str, routing: str, design: str, max_packet: int) -> Scenario:
    if topology == "ring":
        base = Scenario.mesh(8, 1).topology("ring")
    elif topology == "cmesh":
        base = Scenario.mesh(4).topology("cmesh", concentration=2)
    else:
        base = Scenario.mesh(4).topology(topology, routing=routing)
    return base.design(design).max_packet_flits(max_packet)


def hotspot_burst(network: Network) -> None:
    """Every node fires a bounded burst towards the (0, 0) hotspot."""
    hotspot = Coord(0, 0)
    for repeat in range(2):
        for src in network.config.mesh.nodes():
            if src != hotspot:
                network.send(src, hotspot, 1 + repeat, kind="load")


def mirrored_pairs(network: Network) -> None:
    """Permutation traffic: every node messages its point-mirrored partner."""
    mesh = network.config.mesh
    for src in mesh.nodes():
        dst = Coord(mesh.width - 1 - src.x, mesh.height - 1 - src.y)
        if dst != src:
            network.send(src, dst, 4, kind="data")


def staggered_waves(network: Network) -> None:
    """Three injection waves separated by driver-controlled stepping."""
    mesh = network.config.mesh
    nodes = list(mesh.nodes())
    for wave, payload in enumerate((1, 4, 2)):
        for index, src in enumerate(nodes):
            dst = nodes[(index + 2 * wave + 1) % len(nodes)]
            if dst != src:
                network.send(src, dst, payload, kind=f"wave{wave}")
        network.run(15)


WORKLOADS = {
    "hotspot": hotspot_burst,
    "mirror": mirrored_pairs,
    "staggered": staggered_waves,
}

NETWORK_GRID = [
    pytest.param(topology, routing, design, max_packet, workload,
                 id=f"{topology}-{routing}-{design}-L{max_packet}-{workload}")
    for topology, routing in (
        ("mesh", "xy"),
        ("mesh", "yx"),
        ("torus", "xy"),
        ("ring", "xy"),
        ("cmesh", "xy"),
    )
    for design in ("regular", "waw_wap")
    for max_packet in (1, 4)
    for workload in ("hotspot", "mirror", "staggered")
    if not (design == "regular" and max_packet == 1)  # regular L1 == waw L1 traffic shape
    # The staggered all-to-all waves overload the ring's wrapped channel
    # cycle into a genuine wormhole deadlock (no virtual channels -- see the
    # Network.run_until_idle docstring); both backends stall identically,
    # but there is no drained run to compare.
    if not (topology == "ring" and workload == "staggered")
]


@pytest.mark.parametrize("topology,routing,design,max_packet,workload", NETWORK_GRID)
def test_network_backends_bit_identical(topology, routing, design, max_packet, workload):
    scenario = _scenario(topology, routing, design, max_packet)
    snapshots = {}
    for backend in BACKENDS:
        network = Network(scenario.backend(backend).build())
        WORKLOADS[workload](network)
        network.run_until_idle(max_cycles=300_000)
        snapshots[backend] = network_snapshot(network)
    assert snapshots["event"] == snapshots["cycle"]


def test_network_custom_timing_bit_identical():
    """Non-default pipeline/link latencies change the ready-cycle pattern."""
    scenario = (
        Scenario.mesh(4)
        .waw_wap()
        .timing(routing_latency=5, link_latency=2, flit_cycle=1)
        .buffer_depth(2)
    )
    snapshots = {}
    for backend in BACKENDS:
        network = Network(scenario.backend(backend).build())
        mirrored_pairs(network)
        network.run_until_idle(max_cycles=300_000)
        snapshots[backend] = network_snapshot(network)
    assert snapshots["event"] == snapshots["cycle"]


def test_network_random_traffic_bit_identical():
    """Seeded uniform-random injection, then an event-driven drain."""
    snapshots = {}
    for backend in BACKENDS:
        config = Scenario.mesh(4).waw_wap().backend(backend).build()
        network = Network(config)
        traffic = UniformRandomTraffic(config.mesh, injection_rate=0.05, payload_flits=2, seed=7)
        traffic.drive(network, cycles=200)
        network.run_until_idle(max_cycles=300_000)
        snapshots[backend] = network_snapshot(network)
    assert snapshots["event"] == snapshots["cycle"]


# ----------------------------------------------------------------------
# Fault injection: null models are invisible, faulty runs are
# backend-identical
# ----------------------------------------------------------------------
ZERO_RATE_MODEL = {"kind": "independent", "corrupt_rate": 0.0, "loss_rate": 0.0}


@pytest.mark.parametrize("topology,routing,design,max_packet,workload", NETWORK_GRID)
@pytest.mark.parametrize("backend", BACKENDS)
def test_zero_rate_fault_model_bit_identical_to_no_model(
    topology, routing, design, max_packet, workload, backend
):
    """A fault model whose rates are all zero must not change a single bit.

    The whole reliability machinery (injector, HARQ state, sequence
    numbers, control traffic) must stay structurally disabled, so the
    zero-rate run reproduces the no-fault-model run exactly -- latencies,
    flit counts and makespans -- on both backends across the grid.
    """
    scenario = _scenario(topology, routing, design, max_packet).backend(backend)
    snapshots = {}
    for label, sc in (("plain", scenario), ("zero", scenario.fault_model(ZERO_RATE_MODEL))):
        network = Network(sc.build())
        WORKLOADS[workload](network)
        network.run_until_idle(max_cycles=300_000)
        snapshots[label] = network_snapshot(network)
    assert snapshots["zero"] == snapshots["plain"]


FAULTY_MODELS = [
    pytest.param(
        {"kind": "independent", "corrupt_rate": 0.01, "loss_rate": 0.005,
         "seed": 11, "ack_timeout": 128},
        id="independent",
    ),
    pytest.param(
        {"kind": "gilbert", "bad_corrupt_rate": 0.05, "bad_loss_rate": 0.05,
         "good_to_bad": 0.01, "bad_to_good": 0.1, "seed": 11, "ack_timeout": 128},
        id="gilbert",
    ),
]


def _faulty_network_snapshot(network: Network) -> dict:
    snapshot = network_snapshot(network)
    snapshot["retransmissions"] = network.total_retransmissions()
    snapshot["fault_counts"] = network.fault_counts()
    snapshot["control_messages"] = sum(
        nic.control_messages_sent for nic in network.nics.values()
    )
    return snapshot


@pytest.mark.parametrize("model", FAULTY_MODELS)
def test_faulty_network_backends_bit_identical(model):
    """Under real faults + HARQ recovery the backends must still agree."""
    snapshots = {}
    for backend in BACKENDS:
        network = Network(
            Scenario.mesh(4).waw_wap().fault_model(model).backend(backend).build()
        )
        mirrored_pairs(network)
        hotspot_burst(network)
        network.run_until_idle(max_cycles=300_000)
        snapshots[backend] = _faulty_network_snapshot(network)
    assert snapshots["event"] == snapshots["cycle"]
    assert snapshots["cycle"]["completed"] == snapshots["cycle"]["sent"]


def test_faulty_system_backends_bit_identical():
    """Manycore run under faults: cores + MC + HARQ agree across backends."""
    snapshots = {}
    for backend in BACKENDS:
        config = (
            Scenario.mesh(3)
            .waw_wap()
            .fault_model("independent", corrupt_rate=0.005, loss_rate=0.005,
                         seed=5, ack_timeout=128)
            .backend(backend)
            .build()
        )
        system = ManycoreSystem(config)
        suite = autobench_suite()
        nodes = [c for c in config.mesh.nodes() if c != config.memory_controller]
        for index, node in enumerate(nodes):
            system.add_profile_core(node, suite[index % len(suite)].scaled(0.002))
        cycles = system.run_to_completion(max_cycles=2_000_000)
        snapshot = system_snapshot(system, cycles)
        snapshot["network"]["retransmissions"] = system.network.total_retransmissions()
        snapshot["network"]["fault_counts"] = system.network.fault_counts()
        snapshots[backend] = snapshot
    assert snapshots["event"] == snapshots["cycle"]


def test_zero_rate_fault_model_system_bit_identical_to_no_model():
    """System-level zero-rate check on top of the network-level grid."""
    plain = _run_multiprogrammed("waw_wap", "event")
    config = (
        Scenario.mesh(3)
        .waw_wap()
        .fault_model(ZERO_RATE_MODEL)
        .backend("event")
        .build()
    )
    system = ManycoreSystem(config)
    suite = autobench_suite()
    nodes = [c for c in config.mesh.nodes() if c != config.memory_controller]
    for index, node in enumerate(nodes):
        system.add_profile_core(node, suite[index % len(suite)].scaled(0.002))
    cycles = system.run_to_completion(max_cycles=2_000_000)
    assert system_snapshot(system, cycles) == plain


# ----------------------------------------------------------------------
# System-level scenarios: cores + caches + memory controller on the NoC
# ----------------------------------------------------------------------
def _run_multiprogrammed(design: str, backend: str) -> dict:
    config = Scenario.mesh(3).design(design).backend(backend).build()
    system = ManycoreSystem(config)
    suite = autobench_suite()
    nodes = [c for c in config.mesh.nodes() if c != config.memory_controller]
    for index, node in enumerate(nodes):
        system.add_profile_core(node, suite[index % len(suite)].scaled(0.002))
    cycles = system.run_to_completion(max_cycles=2_000_000)
    return system_snapshot(system, cycles)


@pytest.mark.parametrize("design", ("regular", "waw_wap"))
def test_multiprogrammed_eembc_bit_identical(design):
    assert _run_multiprogrammed(design, "event") == _run_multiprogrammed(design, "cycle")


@pytest.mark.parametrize("bench_name", ("a2time", "cacheb"))
def test_single_core_eembc_bit_identical(bench_name):
    """The table3-style setup: one benchmark at the far corner of the mesh.

    This is the regime where the event-driven backend skips the most (whole
    compute gaps between NoC round trips) -- and where a skipping bug would
    distort latencies the most.
    """
    snapshots = {}
    for backend in BACKENDS:
        config = Scenario.mesh(4).waw_wap().backend(backend).build()
        system = ManycoreSystem(config)
        system.add_profile_core(Coord(3, 3), autobench_profile(bench_name).scaled(0.01))
        cycles = system.run_to_completion(max_cycles=2_000_000)
        snapshots[backend] = system_snapshot(system, cycles)
    assert snapshots["event"] == snapshots["cycle"]


def test_parallel_workload_bit_identical():
    workload = ParallelWorkload.balanced(
        "diff-kernel",
        num_threads=4,
        phases=3,
        compute_cycles_per_phase=500,
        loads_per_phase=12,
        evictions_per_phase=2,
    )
    snapshots = {}
    for backend in BACKENDS:
        config = Scenario.mesh(3).regular().backend(backend).build()
        system = ManycoreSystem(config)
        mc = config.memory_controller
        nodes = sorted(
            (c for c in config.mesh.nodes() if c != mc),
            key=lambda c: (c.manhattan(mc), c.y, c.x),
        )
        placement = Placement("diff")
        for thread_id in range(workload.num_threads):
            placement.assign(thread_id, nodes[thread_id])
        system.add_parallel_workload(workload, placement)
        cycles = system.run_to_completion(max_cycles=2_000_000)
        snapshots[backend] = system_snapshot(system, cycles)
    assert snapshots["event"] == snapshots["cycle"]


# ----------------------------------------------------------------------
# Experiment-level: the registered simulating experiments end to end
# ----------------------------------------------------------------------
def test_avgperf_experiment_backend_agnostic():
    from repro.experiments import avg_performance

    by_backend = {
        backend: [p.as_dict() for p in avg_performance.run(
            mesh_size=3, profile_scale=0.001, parallel_threads=4, backend=backend
        )]
        for backend in BACKENDS
    }
    assert by_backend["event"] == by_backend["cycle"]


def test_validation_experiment_backend_agnostic():
    from repro.experiments import bound_validation

    by_backend = {
        backend: [r.as_dict() for r in bound_validation.run(
            mesh_sizes=(3,), congestion_cycles=400, backend=backend
        )]
        for backend in BACKENDS
    }
    assert by_backend["event"] == by_backend["cycle"]
