"""Tests for the private cache model (:mod:`repro.manycore.cache`)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.manycore.cache import Cache, CacheConfig


class TestCacheConfig:
    def test_defaults(self):
        config = CacheConfig()
        assert config.num_sets == 16 * 1024 // (64 * 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=100, line_bytes=64, associativity=4)
        with pytest.raises(ValueError):
            CacheConfig(associativity=0)
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=0)


class TestCacheBehaviour:
    def test_first_access_misses_then_hits(self):
        cache = Cache()
        first = cache.access(0x1000)
        assert not first.hit
        second = cache.access(0x1000)
        assert second.hit
        assert cache.misses == 1 and cache.hits == 1

    def test_same_line_different_offsets_hit(self):
        cache = Cache()
        cache.access(0x2000)
        assert cache.access(0x2004).hit
        assert cache.access(0x203F).hit
        assert cache.access(0x2040).hit is False  # next line

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            Cache().access(-1)

    def test_eviction_of_clean_line_causes_no_writeback(self):
        config = CacheConfig(size_bytes=256, line_bytes=64, associativity=1)  # 4 sets
        cache = Cache(config)
        cache.access(0x0000)            # set 0
        result = cache.access(0x0400)   # same set, evicts the clean line
        assert not result.hit and not result.writeback

    def test_eviction_of_dirty_line_causes_writeback(self):
        config = CacheConfig(size_bytes=256, line_bytes=64, associativity=1)
        cache = Cache(config)
        cache.access(0x0000, is_write=True)
        result = cache.access(0x0400)
        assert result.writeback
        assert result.evicted_line == 0x0000
        assert cache.writebacks == 1

    def test_lru_replacement_order(self):
        config = CacheConfig(size_bytes=512, line_bytes=64, associativity=2)  # 4 sets
        cache = Cache(config)
        set_stride = 64 * config.num_sets
        a, b, c = 0x0000, set_stride, 2 * set_stride  # all map to set 0
        cache.access(a)
        cache.access(b)
        cache.access(a)          # a is now most recently used
        cache.access(c)          # evicts b (LRU)
        assert cache.access(a).hit
        assert not cache.access(b).hit

    def test_write_marks_line_dirty_even_on_hit(self):
        config = CacheConfig(size_bytes=256, line_bytes=64, associativity=1)
        cache = Cache(config)
        cache.access(0x0000)                 # clean fill
        cache.access(0x0000, is_write=True)  # dirty on hit
        result = cache.access(0x0400)        # evict
        assert result.writeback

    def test_statistics_and_reset(self):
        cache = Cache()
        for address in range(0, 64 * 10, 64):
            cache.access(address)
        assert cache.accesses == 10
        assert cache.miss_rate == 1.0
        cache.reset_statistics()
        assert cache.accesses == 0 and cache.miss_rate == 0.0

    @given(
        addresses=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=300),
        writes=st.lists(st.booleans(), min_size=1, max_size=300),
    )
    @settings(max_examples=30, deadline=None)
    def test_counters_are_consistent(self, addresses, writes):
        cache = Cache(CacheConfig(size_bytes=1024, line_bytes=64, associativity=2))
        for address, is_write in zip(addresses, writes):
            cache.access(address, is_write=is_write)
        assert cache.hits + cache.misses == cache.accesses
        assert cache.writebacks <= cache.misses  # a writeback needs an eviction

    @given(addresses=st.lists(st.integers(0, 1 << 14), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_repeated_pass_over_small_footprint_hits(self, addresses):
        """A footprint smaller than the cache fully hits on the second pass."""
        cache = Cache(CacheConfig(size_bytes=16 * 1024, line_bytes=64, associativity=4))
        footprint = [a % (8 * 1024) for a in addresses]  # 8 KiB < 16 KiB
        for address in footprint:
            cache.access(address)
        hits_before = cache.hits
        for address in footprint:
            assert cache.access(address).hit
        assert cache.hits == hits_before + len(footprint)
