"""Tests for the core and memory-controller models (:mod:`repro.manycore`)."""

from __future__ import annotations

import pytest

from repro.core.config import regular_mesh_config, waw_wap_config
from repro.geometry import Coord
from repro.manycore.cache import Cache, CacheConfig
from repro.manycore.core import Core
from repro.manycore.memory import MemoryController
from repro.manycore.system import ManycoreSystem
from repro.noc.network import Network
from repro.workloads.trace import AccessTrace, MemoryOperation, TaskProfile


def operations(n_loads: int, gap: int = 5):
    return iter(MemoryOperation(compute_cycles=gap) for _ in range(n_loads))


class TestMemoryController:
    def test_replies_to_loads(self):
        config = regular_mesh_config(3)
        network = Network(config)
        mc = MemoryController(network)
        network.send(Coord(2, 2), Coord(0, 0), 1, kind="load")
        for _ in range(300):
            mc.step(network.cycle)
            network.step()
        assert mc.served_loads == 1
        replies = network.stats.latencies(kind="reply")
        assert len(replies) == 1

    def test_acknowledges_evictions(self):
        config = regular_mesh_config(3)
        network = Network(config)
        mc = MemoryController(network)
        network.send(Coord(1, 1), Coord(0, 0), 4, kind="eviction")
        for _ in range(300):
            mc.step(network.cycle)
            network.step()
        assert mc.served_evictions == 1
        assert len(network.stats.latencies(kind="eviction_ack")) == 1

    def test_ignores_unknown_kinds(self):
        config = regular_mesh_config(3)
        network = Network(config)
        mc = MemoryController(network)
        network.send(Coord(1, 1), Coord(0, 0), 1, kind="synthetic")
        for _ in range(200):
            mc.step(network.cycle)
            network.step()
        assert mc.served_loads == 0 and not mc.has_work()

    def test_service_latency_delays_reply(self):
        from repro.core.ubd import MemoryTiming

        config = regular_mesh_config(3)
        fast_net = Network(config)
        MemoryController(fast_net, timing=MemoryTiming(service_latency=0))
        slow_net = Network(config)
        MemoryController(slow_net, timing=MemoryTiming(service_latency=80))

        def round_trip(network):
            network.send(Coord(2, 2), Coord(0, 0), 1, kind="load")
            for _ in range(600):
                for listener_owner in ():
                    pass
                # MemoryController registered itself; step it via closure:
                network.step()
            return network

        # Use ManycoreSystem-free manual stepping with controller stored above.
        # (The controllers are already listening; we just need to pump them.)
        # Re-create to keep controllers accessible:
        fast_net = Network(config)
        fast_mc = MemoryController(fast_net, timing=MemoryTiming(service_latency=0))
        fast_net.send(Coord(2, 2), Coord(0, 0), 1, kind="load")
        slow_net = Network(config)
        slow_mc = MemoryController(slow_net, timing=MemoryTiming(service_latency=80))
        slow_net.send(Coord(2, 2), Coord(0, 0), 1, kind="load")
        for _ in range(600):
            fast_mc.step(fast_net.cycle)
            fast_net.step()
            slow_mc.step(slow_net.cycle)
            slow_net.step()
        fast_reply = fast_net.stats.latencies(kind="reply")
        slow_reply = slow_net.stats.latencies(kind="reply")
        assert fast_reply and slow_reply
        assert slow_net.stats.messages[-1].completion_cycle > fast_net.stats.messages[-1].completion_cycle


class TestCore:
    def test_core_cannot_sit_on_memory_controller(self):
        config = regular_mesh_config(3)
        network = Network(config)
        with pytest.raises(ValueError):
            Core(Coord(0, 0), network, operations(1))

    def test_profile_core_completes_and_counts_loads(self):
        config = regular_mesh_config(3)
        system = ManycoreSystem(config)
        profile = TaskProfile(name="toy", instructions=2_000, misses_per_kinst=5.0,
                              writebacks_per_kinst=1.0)
        core = system.add_profile_core(Coord(2, 2), profile)
        system.run_to_completion(max_cycles=100_000)
        assert core.done
        assert core.issued_loads == profile.memory_loads
        assert core.issued_evictions == profile.evictions
        assert core.completed_loads == core.issued_loads
        assert core.elapsed_cycles > profile.compute_cycles  # stalls add time

    def test_core_blocks_on_loads_but_not_on_evictions(self):
        config = regular_mesh_config(3)
        system = ManycoreSystem(config)
        ops = [
            MemoryOperation(compute_cycles=2, is_write=False),
            MemoryOperation(compute_cycles=2, is_write=True),
        ]
        core = system.add_core(Coord(1, 1), iter(ops), name="mixed")
        system.run_to_completion(max_cycles=50_000)
        assert core.issued_loads == 1
        assert core.issued_evictions == 1
        assert core.stall_cycles > 0  # waited for the load reply

    def test_trace_core_uses_cache_to_filter_traffic(self):
        config = regular_mesh_config(3)
        system = ManycoreSystem(config)
        trace = AccessTrace(name="hot-loop")
        for rep in range(4):
            for address in range(0, 4 * 64, 64):
                trace.append(compute_cycles=1, address=address)
        core = system.add_trace_core(Coord(2, 1), trace,
                                     cache_config=CacheConfig(size_bytes=1024))
        system.run_to_completion(max_cycles=100_000)
        # 4 distinct lines: only the first pass misses, later passes hit.
        assert core.issued_loads == 4
        assert core.cache.hits == 12

    def test_done_core_does_not_issue_more_traffic(self):
        config = regular_mesh_config(3)
        system = ManycoreSystem(config)
        core = system.add_core(Coord(1, 1), operations(2), name="short")
        system.run_to_completion(max_cycles=50_000)
        issued = core.issued_loads
        system.run(50)
        assert core.issued_loads == issued


class TestManycoreSystem:
    def test_duplicate_core_rejected(self):
        system = ManycoreSystem(regular_mesh_config(3))
        system.add_core(Coord(1, 1), operations(1))
        with pytest.raises(ValueError):
            system.add_core(Coord(1, 1), operations(1))

    def test_makespan_requires_completion(self):
        system = ManycoreSystem(regular_mesh_config(3))
        system.add_core(Coord(1, 1), operations(5))
        with pytest.raises(RuntimeError):
            system.makespan()
        system.run_to_completion(max_cycles=50_000)
        assert system.makespan() > 0
        assert Coord(1, 1) in system.per_core_cycles()

    def test_waw_and_regular_systems_complete_same_workload(self):
        """Both design points execute identical traffic; only timing differs."""
        results = {}
        for name, config in (("regular", regular_mesh_config(3)), ("waw", waw_wap_config(3))):
            system = ManycoreSystem(config)
            cores = []
            for node in [Coord(1, 0), Coord(2, 1), Coord(1, 2)]:
                cores.append(system.add_core(node, operations(10), name=str(node)))
            cycles = system.run_to_completion(max_cycles=200_000)
            results[name] = cycles
            assert all(c.completed_loads == 10 for c in cores)
        # Average performance of the two designs stays in the same ballpark.
        assert 0.5 < results["waw"] / results["regular"] < 2.0

    def test_run_to_completion_timeout(self):
        system = ManycoreSystem(regular_mesh_config(3))
        system.add_core(Coord(1, 1), operations(50))
        with pytest.raises(RuntimeError):
            system.run_to_completion(max_cycles=3)
