"""Tests for the arbiters (:mod:`repro.core.arbitration`).

The round-robin arbiter must be fair (no requester starves, at most one grant
to every other port between two grants to the same port); the WaW arbiter
must implement the paper's flit-counter scheme and deliver the configured
bandwidth shares under saturation.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arbitration import (
    RoundRobinArbiter,
    WeightedRoundRobinArbiter,
    make_arbiter,
)
from repro.geometry import Port

PORTS = [Port.XPLUS, Port.XMINUS, Port.YPLUS, Port.LOCAL]


class TestRoundRobinArbiter:
    def test_requires_candidates(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter([])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter([Port.LOCAL, Port.LOCAL])

    def test_empty_request_set_returns_none(self):
        arb = RoundRobinArbiter(PORTS)
        assert arb.grant([]) is None

    def test_unknown_requester_rejected(self):
        arb = RoundRobinArbiter([Port.LOCAL, Port.XPLUS])
        with pytest.raises(ValueError):
            arb.grant([Port.YMINUS])

    def test_single_requester_always_wins(self):
        arb = RoundRobinArbiter(PORTS)
        for _ in range(5):
            assert arb.grant([Port.YPLUS]) is Port.YPLUS

    def test_round_robin_rotation_under_full_contention(self):
        arb = RoundRobinArbiter(PORTS)
        grants = [arb.grant(PORTS) for _ in range(len(PORTS) * 3)]
        counts = Counter(grants)
        # Perfectly fair: every requester granted the same number of times.
        assert set(counts.values()) == {3}

    def test_no_port_waits_more_than_one_full_round(self):
        arb = RoundRobinArbiter(PORTS)
        last_grant = {p: -1 for p in PORTS}
        for i in range(40):
            winner = arb.grant(PORTS)
            for p in PORTS:
                if p is winner:
                    last_grant[p] = i
                else:
                    # Under full contention nobody waits longer than a round.
                    assert i - last_grant[p] <= len(PORTS)

    def test_priority_order_rotates_after_grant(self):
        arb = RoundRobinArbiter(PORTS)
        winner = arb.grant(PORTS)
        assert arb.priority_order()[-1] is winner

    @given(st.lists(st.sampled_from(PORTS), min_size=1, max_size=60))
    @settings(max_examples=60)
    def test_grant_is_always_a_requester(self, requests):
        arb = RoundRobinArbiter(PORTS)
        for _ in requests:
            reqs = list(set(requests))
            winner = arb.grant(reqs)
            assert winner in reqs


class TestWeightedRoundRobinArbiter:
    def test_missing_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedRoundRobinArbiter([Port.LOCAL, Port.XPLUS], {Port.LOCAL: 1})

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedRoundRobinArbiter([Port.LOCAL], {Port.LOCAL: -1})

    def test_unique_requester_does_not_consume_credit(self):
        """Paper: 'When an input port is the unique candidate ... unaltered'."""
        arb = WeightedRoundRobinArbiter([Port.XPLUS, Port.YPLUS], {Port.XPLUS: 3, Port.YPLUS: 1})
        before = arb.credit_of(Port.XPLUS)
        assert arb.grant([Port.XPLUS]) is Port.XPLUS
        assert arb.credit_of(Port.XPLUS) == before

    def test_contended_grant_decrements_winner_credit(self):
        arb = WeightedRoundRobinArbiter([Port.XPLUS, Port.YPLUS], {Port.XPLUS: 3, Port.YPLUS: 1})
        winner = arb.grant([Port.XPLUS, Port.YPLUS])
        assert winner is Port.XPLUS  # larger flit count wins
        assert arb.credit_of(Port.XPLUS) == 2

    def test_largest_counter_wins(self):
        arb = WeightedRoundRobinArbiter(
            [Port.XPLUS, Port.YPLUS, Port.LOCAL],
            {Port.XPLUS: 5, Port.YPLUS: 2, Port.LOCAL: 1},
        )
        assert arb.grant([Port.YPLUS, Port.LOCAL]) is Port.YPLUS

    def test_idle_cycle_refills_up_to_weight(self):
        arb = WeightedRoundRobinArbiter([Port.XPLUS, Port.YPLUS], {Port.XPLUS: 2, Port.YPLUS: 2})
        arb.grant([Port.XPLUS, Port.YPLUS])
        arb.grant([Port.XPLUS, Port.YPLUS])
        drained = arb.credit_of(Port.XPLUS) + arb.credit_of(Port.YPLUS)
        arb.idle_cycle()
        refilled = arb.credit_of(Port.XPLUS) + arb.credit_of(Port.YPLUS)
        assert refilled == drained + 2
        for _ in range(10):
            arb.idle_cycle()
        assert arb.credit_of(Port.XPLUS) == 2  # saturates at the weight
        assert arb.credit_of(Port.YPLUS) == 2

    def test_bandwidth_shares_under_saturation(self):
        """Under permanent contention the grants follow the 1/3 vs 2/3 split."""
        arb = WeightedRoundRobinArbiter([Port.XPLUS, Port.YPLUS], {Port.XPLUS: 1, Port.YPLUS: 2})
        rounds = 3_000
        counts = Counter(arb.grant([Port.XPLUS, Port.YPLUS]) for _ in range(rounds))
        share_y = counts[Port.YPLUS] / rounds
        assert abs(share_y - 2 / 3) < 0.05
        assert abs(counts[Port.XPLUS] / rounds - 1 / 3) < 0.05

    def test_guaranteed_share_helper(self):
        arb = WeightedRoundRobinArbiter([Port.XPLUS, Port.YPLUS], {Port.XPLUS: 1, Port.YPLUS: 2})
        assert arb.guaranteed_share(Port.YPLUS) == pytest.approx(2 / 3)

    def test_zero_weight_port_is_still_served_when_alone(self):
        """Work conservation: a weight-0 port gets the port if nobody else wants it."""
        arb = WeightedRoundRobinArbiter([Port.XPLUS, Port.LOCAL], {Port.XPLUS: 4, Port.LOCAL: 0})
        assert arb.grant([Port.LOCAL]) is Port.LOCAL

    def test_all_exhausted_still_grants_someone(self):
        arb = WeightedRoundRobinArbiter([Port.XPLUS, Port.YPLUS], {Port.XPLUS: 1, Port.YPLUS: 1})
        for _ in range(10):
            assert arb.grant([Port.XPLUS, Port.YPLUS]) in (Port.XPLUS, Port.YPLUS)

    def test_tie_break_uses_round_robin(self):
        arb = WeightedRoundRobinArbiter([Port.XPLUS, Port.YPLUS], {Port.XPLUS: 4, Port.YPLUS: 4})
        first = arb.grant([Port.XPLUS, Port.YPLUS])
        # Refill so both are tied again; the other port must win now.
        arb.idle_cycle()
        second = arb.grant([Port.XPLUS, Port.YPLUS])
        assert {first, second} == {Port.XPLUS, Port.YPLUS}

    @given(
        weights=st.tuples(st.integers(0, 6), st.integers(0, 6), st.integers(0, 6)),
        pattern=st.lists(st.integers(0, 6), min_size=1, max_size=80),
    )
    @settings(max_examples=40)
    def test_grants_are_always_requesters_and_credits_bounded(self, weights, pattern):
        ports = [Port.XPLUS, Port.YPLUS, Port.LOCAL]
        arb = WeightedRoundRobinArbiter(ports, dict(zip(ports, weights)))
        for step in pattern:
            reqs = [p for i, p in enumerate(ports) if step & (1 << i)]
            winner = arb.grant(reqs)
            if reqs:
                assert winner in reqs
            else:
                assert winner is None
            for port in ports:
                assert 0 <= arb.credit_of(port) <= max(arb.weights[port], 0) + 1


class TestMakeArbiter:
    def test_unweighted(self):
        arb = make_arbiter(PORTS, weighted=False)
        assert isinstance(arb, RoundRobinArbiter)

    def test_weighted_with_defaults_for_missing_ports(self):
        arb = make_arbiter(PORTS, weighted=True, weights={Port.LOCAL: 3})
        assert isinstance(arb, WeightedRoundRobinArbiter)
        assert arb.weights[Port.XPLUS] == 0
        assert arb.weights[Port.LOCAL] == 3
