"""Tests of the decorator registry and the ExperimentResult protocol."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.api import (
    ExperimentResult,
    UnknownExperimentError,
    experiment,
    get_experiment,
    list_experiments,
    unwrap,
)

ALL_EXPERIMENTS = {
    "table1", "table2", "table3", "fig2a", "fig2b",
    "avgperf", "area", "ablation", "validation", "reliability_sweep",
    "scenario_wctt", "bound_comparison",
}

#: Small-but-representative parameters so the full-suite round trip is fast.
FAST_PARAMS = {
    "table3": {"mesh_size": 3},
    # fig2a/fig2b keep the default 8x8 mesh: the 16-thread 3DPP placements
    # are only defined for meshes that can host them.
    "fig2a": {"packet_sizes": (1, 4)},
    "avgperf": {
        "mesh_size": 3, "profile_scale": 0.0005, "parallel_threads": 4,
        "parallel_phases": 1, "parallel_loads_per_phase": 10,
        "parallel_compute_per_phase": 500,
    },
    "ablation": {"mesh_size": 3},
    "validation": {"mesh_sizes": (3,), "congestion_cycles": 300},
    "table2": {"sizes": (2, 3)},
    "reliability_sweep": {
        "mesh_size": 3, "fault_rates": (0.0, 0.01), "trials": 2,
        "scale": 0.004, "background": 2,
    },
    "bound_comparison": {
        "mesh_sizes": (3,), "topologies": ("mesh",), "workloads": ("full",),
        "payload_sizes": (1,), "congestion_cycles": 300,
    },
}


class TestDiscovery:
    def test_all_twelve_experiments_registered(self):
        assert {spec.name for spec in list_experiments()} == ALL_EXPERIMENTS

    def test_specs_carry_metadata(self):
        for spec in list_experiments():
            assert spec.description
            assert spec.paper_reference
            assert spec.module.startswith("repro.experiments.")

    def test_round_trip_name_to_spec(self):
        for name in ALL_EXPERIMENTS:
            assert get_experiment(name).name == name

    def test_unknown_name_raises_key_error_with_suggestions(self):
        with pytest.raises(UnknownExperimentError) as excinfo:
            get_experiment("tabel2")
        assert isinstance(excinfo.value, KeyError)
        assert "table2" in str(excinfo.value)
        assert "table2" in excinfo.value.suggestions

    def test_unknown_name_without_close_match_lists_known(self):
        with pytest.raises(UnknownExperimentError) as excinfo:
            get_experiment("zzzzz")
        assert "known experiments" in str(excinfo.value)


class TestRunWrapping:
    def test_run_returns_experiment_result(self):
        result = get_experiment("table1").run()
        assert isinstance(result, ExperimentResult)
        assert result.experiment == "table1"
        assert result.paper_reference == "Table I"

    def test_params_recorded(self):
        result = get_experiment("table2").run(sizes=(2, 3))
        assert result.params == {"sizes": (2, 3)}

    def test_quick_merges_and_overrides(self):
        spec = get_experiment("table2")
        result = spec.run(quick=True)
        assert result.params == {"sizes": (2, 3, 4)}
        overridden = spec.run(quick=True, sizes=(2,))
        assert overridden.params == {"sizes": (2,)}

    def test_payload_delegation_keeps_old_call_sites_working(self):
        result = get_experiment("table2").run(sizes=(2, 3))
        assert len(result) == 2
        assert [row.mesh for row in result] == ["2x2", "3x3"]
        assert result[-1].improvement_at_max > 0
        assert bool(result)

    def test_attribute_delegation_to_grid_payload(self):
        result = get_experiment("table3").run(mesh_size=3)
        assert result.mesh_width == 3
        assert len(result.cores) == 8  # 3x3 minus the memory controller
        with pytest.raises(AttributeError, match="table3"):
            result.no_such_attribute

    def test_unwrap_returns_native_payload(self):
        result = get_experiment("table1").run()
        payload = unwrap(result)
        assert isinstance(payload, list)
        assert unwrap(payload) is payload

    def test_report_is_a_pure_view(self):
        spec = get_experiment("table2")
        result = spec.run(sizes=(2, 3))
        assert spec.report(result) == spec.report(result)
        assert "Table II" in spec.report(result)

    def test_decorator_records_spec_on_function(self):
        from repro.experiments import table2_wctt

        assert table2_wctt.run.spec is get_experiment("table2")


class TestSerializationRoundTrip:
    @pytest.fixture(scope="class")
    def results(self):
        return {
            spec.name: spec.run(**FAST_PARAMS.get(spec.name, {}))
            for spec in list_experiments()
        }

    def test_json_round_trip_for_every_experiment(self, results):
        for name, result in results.items():
            data = json.loads(result.to_json())
            assert data["experiment"] == name
            assert data["paper_reference"]
            assert data["rows"], f"{name} exported no rows"
            for row in data["rows"]:
                assert isinstance(row, dict) and row

    def test_rows_are_homogeneous(self, results):
        for name, result in results.items():
            rows = result.to_dict()["rows"]
            keys = {tuple(sorted(row)) for row in rows}
            assert len(keys) == 1, f"{name} rows are not homogeneous"

    def test_csv_round_trip_for_every_experiment(self, results):
        for name, result in results.items():
            header, rows = result.to_csv_rows()
            assert header and rows
            buffer = io.StringIO()
            writer = csv.writer(buffer)
            writer.writerow(header)
            writer.writerows(rows)
            parsed = list(csv.reader(io.StringIO(buffer.getvalue())))
            assert len(parsed) == len(rows) + 1
            assert parsed[0] == header

    def test_from_dict_rebuilds_rows_only_result(self, results):
        result = results["table2"]
        rebuilt = ExperimentResult.from_dict(json.loads(result.to_json()))
        assert rebuilt.from_cache
        assert rebuilt.experiment == "table2"
        assert rebuilt.rows() == result.to_dict()["rows"]


class TestDecorator:
    def test_custom_experiment_registers_and_wraps(self):
        @experiment(
            "_test_tmp",
            description="temporary test experiment",
            paper_reference="none",
        )
        def run(*, value: int = 1):
            return [{"value": value}]

        try:
            spec = get_experiment("_test_tmp")
            result = spec.run(value=3)
            assert isinstance(result, ExperimentResult)
            assert result.rows() == [{"value": 3}]
        finally:
            from repro.api import registry

            registry._REGISTRY.pop("_test_tmp", None)
