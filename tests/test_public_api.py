"""Tests of the top-level public API (:mod:`repro`)."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.7.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name}"

    def test_subpackages_importable(self):
        for module in (
            "repro.core",
            "repro.noc",
            "repro.manycore",
            "repro.workloads",
            "repro.analysis",
            "repro.experiments",
        ):
            assert importlib.import_module(module) is not None

    def test_core_all_names_resolve(self):
        core = importlib.import_module("repro.core")
        for name in core.__all__:
            assert hasattr(core, name)

    def test_quickstart_snippet_from_docstring(self):
        """The snippet shown in the package docstring must actually work."""
        from repro import make_wctt_analysis, regular_mesh_config
        from repro.geometry import Coord

        analysis = make_wctt_analysis(regular_mesh_config(8, max_packet_flits=4))
        bound = analysis.wctt_packet(Coord(7, 7), Coord(0, 0), packet_flits=1)
        assert bound > 0


class TestDesignPointRoundTrip:
    def test_full_stack_smoke(self):
        """A miniature end-to-end use of the library through the public API."""
        from repro import (
            Coord,
            ManycoreSystem,
            UBDTable,
            regular_mesh_config,
            waw_wap_config,
            wctt_map,
            make_wctt_analysis,
        )

        regular = regular_mesh_config(4, max_packet_flits=4)
        waw = waw_wap_config(4, max_packet_flits=4)

        # Analytical side.
        bounds_regular = wctt_map(make_wctt_analysis(regular), Coord(0, 0))
        bounds_waw = wctt_map(make_wctt_analysis(waw), Coord(0, 0))
        far = Coord(3, 3)
        assert bounds_waw[far] < bounds_regular[far]
        assert UBDTable(waw).load_ubd(far) < UBDTable(regular).load_ubd(far)

        # Simulation side.
        system = ManycoreSystem(waw)
        from repro.workloads import TaskProfile

        system.add_profile_core(Coord(1, 0), TaskProfile(name="t", instructions=500))
        system.run_to_completion(max_cycles=100_000)
        assert system.makespan() > 0

    def test_console_script_entry_point_is_declared(self):
        import importlib.metadata as metadata

        try:
            entry_points = metadata.entry_points()
        except Exception:  # pragma: no cover - very old importlib.metadata
            pytest.skip("importlib.metadata not available")
        names = {ep.name for ep in entry_points.select(group="console_scripts")}
        # The entry point is declared in pyproject; it may be absent when the
        # package is used straight from the source tree without installation.
        if "repro-experiments" not in names:
            pytest.skip("package not installed with console scripts")
        assert "repro-experiments" in names
