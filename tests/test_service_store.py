"""Tests of the durable content-addressed result store (repro.service.store).

Covers the service-era cache guarantees: atomic concurrent writes (no torn
reads), restart durability, legacy cache-file compatibility, eviction, and
the version-aware cache keys the store shares with the batch engine.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

import repro
from repro.api import BatchEngine, BatchJob, ExperimentResult, config_hash
from repro.service import ResultStore, StoreError, default_store_dir

DIGEST = "ab12cd34ef56ab78"


def make_result(experiment: str = "table1", rows: int = 3) -> ExperimentResult:
    return ExperimentResult(
        experiment=experiment,
        payload=[{"row": i, "value": i * 10} for i in range(rows)],
        params={"rows": rows},
        paper_reference="Test",
        description="synthetic store payload",
    )


class TestRoundTrip:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(str(tmp_path))
        path = store.put(DIGEST, make_result(), duration_seconds=1.25)
        assert os.path.exists(path)
        loaded = store.get(DIGEST)
        assert loaded is not None
        assert loaded.experiment == "table1"
        assert loaded.rows() == make_result().rows()
        assert loaded.from_cache

    def test_meta_records_version_and_duration(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put(DIGEST, make_result(), duration_seconds=2.5)
        meta = store.entry_meta(DIGEST)
        assert meta is not None
        assert meta["version"] == repro.__version__
        assert meta["duration_seconds"] == 2.5
        assert meta["config_hash"] == DIGEST
        assert meta["experiment"] == "table1"

    def test_missing_entry_reads_as_none(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert store.get("0123456789abcdef") is None
        assert store.misses == 1 and store.hits == 0

    def test_lookup_counters(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put(DIGEST, make_result())
        store.get(DIGEST)
        store.get("0123456789abcdef")
        stats = store.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_contains_len_keys(self, tmp_path):
        store = ResultStore(str(tmp_path))
        assert DIGEST not in store
        store.put(DIGEST, make_result())
        assert DIGEST in store
        assert len(store) == 1
        assert store.keys() == [DIGEST]

    def test_invalid_digest_rejected(self, tmp_path):
        store = ResultStore(str(tmp_path))
        with pytest.raises(StoreError, match="invalid config hash"):
            store.put("../escape", make_result())
        with pytest.raises(StoreError):
            store.get("UPPER")

    def test_legacy_bare_cache_file_readable(self, tmp_path):
        # Pre-service BatchEngine(cache_dir=...) files are bare to_dict()s.
        legacy = make_result("table2").to_dict()
        (tmp_path / f"{DIGEST}.json").write_text(json.dumps(legacy))
        store = ResultStore(str(tmp_path))
        loaded = store.get(DIGEST)
        assert loaded is not None
        assert loaded.experiment == "table2"
        assert store.entry_meta(DIGEST)["legacy"] is True

    def test_corrupt_files_read_as_absent(self, tmp_path):
        (tmp_path / "deadbeefdeadbeef.json").write_text("{ torn wri")
        (tmp_path / "feedfacefeedface.json").write_text('["not", "a", "dict"]')
        store = ResultStore(str(tmp_path))
        assert store.get("deadbeefdeadbeef") is None
        assert store.get("feedfacefeedface") is None
        assert store.keys() == []
        # clear() still removes the unreadable files.
        assert store.clear() == 2
        assert list(tmp_path.iterdir()) == []


class TestDurabilityAndEviction:
    def test_survives_restart(self, tmp_path):
        ResultStore(str(tmp_path)).put(DIGEST, make_result(), duration_seconds=9.0)
        reopened = ResultStore(str(tmp_path))
        assert reopened.get(DIGEST) is not None
        assert reopened.entry_meta(DIGEST)["duration_seconds"] == 9.0

    def test_discard(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put(DIGEST, make_result())
        assert store.discard(DIGEST) is True
        assert store.discard(DIGEST) is False
        assert store.get(DIGEST) is None

    def test_clear_all_and_by_experiment(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("aaaaaaaaaaaaaaaa", make_result("table1"))
        store.put("bbbbbbbbbbbbbbbb", make_result("table2"))
        store.put("cccccccccccccccc", make_result("table2"))
        assert store.clear(experiment="table2") == 2
        assert store.keys() == ["aaaaaaaaaaaaaaaa"]
        assert store.clear() == 1
        assert len(store) == 0

    def test_put_overwrites_last_writer_wins(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put(DIGEST, make_result(rows=1))
        store.put(DIGEST, make_result(rows=5))
        assert len(store.get(DIGEST).rows()) == 5
        assert len(store) == 1

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ResultStore(str(tmp_path))
        for digest in ("aaaaaaaaaaaaaaaa", "bbbbbbbbbbbbbbbb"):
            store.put(digest, make_result())
        names = [p.name for p in tmp_path.iterdir()]
        assert all(not name.startswith(".") for name in names)
        assert len(names) == 2

    def test_stats_shape(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("aaaaaaaaaaaaaaaa", make_result("table1"), duration_seconds=1.0)
        store.put("bbbbbbbbbbbbbbbb", make_result("table2"), duration_seconds=2.0)
        stats = store.stats()
        assert stats["root"] == str(tmp_path)
        assert stats["entries"] == 2
        assert stats["total_bytes"] > 0
        assert stats["by_experiment"] == {"table1": 1, "table2": 1}
        assert stats["saved_compute_seconds"] == 3.0


def _hammer_writes(root: str, digest: str, rows: int, count: int) -> None:
    """Child-process body: repeatedly overwrite one entry."""
    from repro.api import ExperimentResult
    from repro.service import ResultStore

    store = ResultStore(root)
    payload = [{"row": i, "value": i} for i in range(rows)]
    for _ in range(count):
        store.put(digest, ExperimentResult(experiment="stress", payload=payload))


class TestConcurrentWriters:
    def test_parallel_writers_never_tear(self, tmp_path):
        """Readers racing multiple writer processes see complete entries only."""
        root = str(tmp_path)
        rows = 50
        writers = [
            multiprocessing.Process(target=_hammer_writes, args=(root, DIGEST, rows, 30))
            for _ in range(3)
        ]
        for proc in writers:
            proc.start()
        reader = ResultStore(root)
        observed = 0
        try:
            while any(proc.is_alive() for proc in writers):
                result = reader.get(DIGEST)
                if result is not None:
                    observed += 1
                    # An entry is either absent or complete -- never torn.
                    assert len(result.rows()) == rows
        finally:
            for proc in writers:
                proc.join(timeout=60)
        assert all(proc.exitcode == 0 for proc in writers)
        assert observed > 0
        assert len(reader.get(DIGEST).rows()) == rows


class TestDefaultLocation:
    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "explicit"))
        assert default_store_dir() == str(tmp_path / "explicit")

    def test_xdg_cache_home(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_store_dir() == os.path.join(str(tmp_path / "xdg"), "repro")

    def test_home_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE_DIR", raising=False)
        monkeypatch.delenv("XDG_CACHE_HOME", raising=False)
        assert default_store_dir().endswith(os.path.join(".cache", "repro"))

    def test_store_uses_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "via-env"))
        assert ResultStore().root == str(tmp_path / "via-env")


class TestEngineIntegration:
    def test_engine_cache_dir_builds_a_store(self, tmp_path):
        engine = BatchEngine(cache_dir=str(tmp_path))
        assert isinstance(engine.store, ResultStore)
        result = engine.run(BatchJob("table1"))
        # The engine writes store envelopes under the familiar layout.
        envelope = json.loads((tmp_path / f"{result.config_hash}.json").read_text())
        assert envelope["store_format"] == 1
        assert envelope["meta"]["experiment"] == "table1"

    def test_engine_accepts_a_shared_store(self, tmp_path):
        store = ResultStore(str(tmp_path))
        first = BatchEngine(store=store).run(BatchJob("table1"))
        assert not first.cached
        second = BatchEngine(store=store).run(BatchJob("table1"))
        assert second.cached

    def test_engine_rejects_store_plus_cache_dir(self, tmp_path):
        with pytest.raises(ValueError, match="store"):
            BatchEngine(store=ResultStore(str(tmp_path)), cache_dir=str(tmp_path))

    def test_store_entries_carry_compute_duration(self, tmp_path):
        engine = BatchEngine(cache_dir=str(tmp_path))
        result = engine.run(BatchJob("table1"))
        meta = engine.store.entry_meta(result.config_hash)
        assert meta["duration_seconds"] >= 0.0

    def test_cache_key_includes_package_version(self, monkeypatch):
        """Satellite regression: a release bump must invalidate every key."""
        job = BatchJob("table1")
        before = config_hash(job)
        monkeypatch.setattr(repro, "__version__", "0.0.0.dev-test")
        after = config_hash(job)
        assert before != after


class TestSingleReadPaths:
    """Regressions for the double-parse bugs in stats() and __contains__."""

    def _counting_read(self, store, monkeypatch):
        calls = []
        original = store._read

        def counted(digest):
            calls.append(digest)
            return original(digest)

        monkeypatch.setattr(store, "_read", counted)
        return calls

    def test_stats_parses_each_entry_exactly_once(self, tmp_path, monkeypatch):
        store = ResultStore(str(tmp_path))
        digests = ["ab12cd34ef56ab78", "0123456789abcdef", "feedfacefeedface"]
        for digest in digests:
            store.put(digest, make_result())
        calls = self._counting_read(store, monkeypatch)
        stats = store.stats()
        assert stats["entries"] == 3
        assert sorted(calls) == sorted(digests)

    def test_stats_values_unchanged_by_restructuring(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put(DIGEST, make_result("table1"), duration_seconds=1.5)
        store.put("0123456789abcdef", make_result("table2"), duration_seconds=0.5)
        # Unreadable garbage must be skipped, not counted.
        with open(os.path.join(store.root, "deadbeefdeadbeef.json"), "w") as handle:
            handle.write("{torn")
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["by_experiment"] == {"table1": 1, "table2": 1}
        assert stats["saved_compute_seconds"] == 2.0
        assert stats["total_bytes"] > 0

    def test_contains_probes_the_file_once(self, tmp_path, monkeypatch):
        store = ResultStore(str(tmp_path))
        store.put(DIGEST, make_result())
        calls = self._counting_read(store, monkeypatch)
        assert DIGEST in store
        assert calls == [DIGEST]

    def test_contains_treats_torn_files_as_absent(self, tmp_path):
        store = ResultStore(str(tmp_path))
        with open(os.path.join(store.root, f"{DIGEST}.json"), "w") as handle:
            handle.write("{torn")
        assert DIGEST not in store
        assert "0123456789abcdef" not in store
