"""Property-based tests (hypothesis) for ``Topology.route()`` invariants.

The WCTT analyses and the simulator both assume that routes are
deterministic, physically connected, minimal under the topology's own
distance metric and compliant with the static legal-turn relation of the
routing strategy -- for *every* topology and *every* src/dst pair.  Random
example-based tests cannot cover that space; these properties can.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis", reason="property tests need hypothesis")
from hypothesis import given, settings, strategies as st

from repro.geometry import Coord, Port
from repro.topology import make_topology

SETTINGS = settings(max_examples=80, deadline=None)


# ----------------------------------------------------------------------
# Strategies: a topology plus two of its nodes
# ----------------------------------------------------------------------
@st.composite
def topology_and_endpoints(draw):
    kind = draw(st.sampled_from(("mesh", "torus", "ring", "cmesh")))
    routing = draw(st.sampled_from(("xy", "yx")))
    if kind == "ring":
        width, height = draw(st.integers(2, 9)), 1
        topology = make_topology("ring", width, 1, routing=routing)
    elif kind == "cmesh":
        width = draw(st.integers(2, 5))
        height = draw(st.integers(2, 5))
        concentration = draw(st.sampled_from((2, 4)))
        topology = make_topology(
            "cmesh", width, height, routing=routing, concentration=concentration
        )
    else:
        width = draw(st.integers(2, 6))
        height = draw(st.integers(2, 6))
        topology = make_topology(kind, width, height, routing=routing)
    source = Coord(draw(st.integers(0, width - 1)), draw(st.integers(0, height - 1)))
    destination = Coord(draw(st.integers(0, width - 1)), draw(st.integers(0, height - 1)))
    return topology, source, destination


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
@SETTINGS
@given(topology_and_endpoints())
def test_route_is_deterministic(case):
    topology, source, destination = case
    assert topology.route(source, destination) == topology.route(source, destination)


@SETTINGS
@given(topology_and_endpoints())
def test_route_endpoints_and_connectivity(case):
    """Routes start at src (LOCAL in), end at dst (LOCAL out) and follow links."""
    topology, source, destination = case
    hops = topology.route(source, destination)

    assert hops[0].router == source
    assert hops[0].in_port is Port.LOCAL
    assert hops[-1].router == destination
    assert hops[-1].out_port is Port.LOCAL
    for hop, nxt in zip(hops, hops[1:]):
        assert hop.out_port is not Port.LOCAL
        # The physical link of hop.out_port leads to the next hop's router,
        # and travel-direction port naming carries the port name across it.
        assert topology.downstream(hop.router, hop.out_port) == nxt.router
        assert nxt.in_port is hop.out_port
        assert topology.upstream(nxt.router, nxt.in_port) == hop.router


@SETTINGS
@given(topology_and_endpoints())
def test_route_is_minimal_for_its_metric(case):
    """Hop count matches the topology's own (shortest-path) distance.

    On the mesh and the concentrated mesh that metric *is* the Manhattan
    distance; on wrapped topologies it takes the shorter way around each
    axis, which is the shortest path dimension-ordered routing can achieve.
    """
    topology, source, destination = case
    hops = topology.route(source, destination)
    assert len(hops) == topology.distance(source, destination) + 1
    if not topology.has_wraparound:
        assert topology.distance(source, destination) == source.manhattan(destination)
    else:
        expected = 0
        for axis, size, lo, hi in (
            ("x", topology.width, source.x, destination.x),
            ("y", topology.height, source.y, destination.y),
        ):
            direct = abs(hi - lo)
            expected += min(direct, size - direct)
        assert topology.distance(source, destination) == expected


@SETTINGS
@given(topology_and_endpoints())
def test_route_dimension_order_never_reverses(case):
    """Dimension-ordered routes resolve the first axis completely, then the
    second, and never mix directions within an axis."""
    topology, source, destination = case
    ports = [hop.out_port for hop in topology.route(source, destination)[:-1]]
    axis_of = {
        Port.XPLUS: "x", Port.XMINUS: "x", Port.YPLUS: "y", Port.YMINUS: "y",
    }
    axes = [axis_of[p] for p in ports]
    first, second = topology.routing.axes
    assert axes == sorted(axes, key=lambda a: (a != first)), axes
    for axis in ("x", "y"):
        directions = {p for p in ports if axis_of[p] == axis}
        assert len(directions) <= 1  # never both plus and minus on one axis


@SETTINGS
@given(topology_and_endpoints())
def test_route_complies_with_legal_turns(case):
    """Every traversed (input -> output) pair is a statically legal turn.

    This is the property the WCTT analyses' interference sets and the
    routers' arbiter candidate lists are built on.  The degenerate
    self-route (a single LOCAL -> LOCAL hop) is excluded: a node never sends
    to itself *through the network*, so LOCAL is deliberately not a legal
    input for the LOCAL output.
    """
    topology, source, destination = case
    if source == destination:
        return
    for hop in topology.route(source, destination):
        legal_outputs = topology.legal_outputs_for_input(hop.router, hop.in_port)
        legal_inputs = topology.legal_inputs_for_output(hop.router, hop.out_port)
        assert hop.out_port in legal_outputs, hop
        assert hop.in_port in legal_inputs, hop


@SETTINGS
@given(topology_and_endpoints())
def test_route_matches_per_router_output_port(case):
    """route() and the simulator's per-router output_port() agree hop by hop."""
    topology, source, destination = case
    for hop in topology.route(source, destination):
        assert topology.output_port(hop.router, destination) is hop.out_port


@SETTINGS
@given(topology_and_endpoints())
def test_self_route_is_a_single_local_hop(case):
    topology, source, _ = case
    assert topology.route(source, source) == topology.route(source, source)
    hops = topology.route(source, source)
    assert len(hops) == 1
    assert hops[0].in_port is Port.LOCAL and hops[0].out_port is Port.LOCAL
