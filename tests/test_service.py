"""Tests of the analysis daemon (repro.service): protocol, server, client.

The server tests run a real :class:`ReproService` on a background thread
bound to an ephemeral port with a temporary store, and talk to it through
:class:`ServiceClient` -- the same path the CLI and the examples use.
"""

from __future__ import annotations

import concurrent.futures
import json
import socket
import time

import pytest

from repro.api import BatchJob, Scenario, config_hash, sweep
from repro.api.registry import _REGISTRY, experiment
from repro.service import (
    ResultStore,
    ServiceClient,
    ServiceError,
    start_service_thread,
)
from repro.service.protocol import (
    ProtocolError,
    decode,
    encode,
    job_from_wire,
    job_to_wire,
    validate_request,
)


# ----------------------------------------------------------------------
# Protocol plumbing
# ----------------------------------------------------------------------
class TestProtocol:
    def test_encode_decode_roundtrip(self):
        message = {"op": "submit", "jobs": [{"experiment": "table1"}], "wait": True}
        assert decode(encode(message)) == message

    def test_encode_is_single_line(self):
        blob = encode({"text": "two\nlines"})
        assert blob.endswith(b"\n") and blob.count(b"\n") == 1

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError, match="malformed JSON"):
            decode(b"{ not json\n")
        with pytest.raises(ProtocolError, match="JSON object"):
            decode(b"[1, 2]\n")

    def test_validate_request_ops(self):
        assert validate_request({"op": "ping"}) == "ping"
        assert validate_request({"op": "fetch", "all": True}) == "fetch"
        with pytest.raises(ProtocolError, match="unknown operation"):
            validate_request({"op": "frobnicate"})
        with pytest.raises(ProtocolError, match="non-empty 'jobs'"):
            validate_request({"op": "submit", "jobs": []})
        with pytest.raises(ProtocolError, match="'hashes' list"):
            validate_request({"op": "status"})

    def test_job_wire_roundtrip(self):
        job = BatchJob("table2", {"sizes": [2, 3]}, quick=True)
        assert job_from_wire(job_to_wire(job)) == job

    def test_job_from_wire_validation(self):
        with pytest.raises(ProtocolError, match="'experiment' name"):
            job_from_wire({"params": {}})
        with pytest.raises(ProtocolError, match="unknown job field"):
            job_from_wire({"experiment": "table1", "bogus": 1})
        with pytest.raises(ProtocolError, match="must be a boolean"):
            job_from_wire({"experiment": "table1", "quick": "yes"})


# ----------------------------------------------------------------------
# Server + client
# ----------------------------------------------------------------------
@pytest.fixture
def service(tmp_path):
    """A live daemon on an ephemeral port backed by a temporary store."""
    handle = start_service_thread(port=0, store_dir=str(tmp_path / "store"), jobs=1)
    try:
        yield handle
    finally:
        handle.stop()


@pytest.fixture
def client(service):
    return ServiceClient(host=service.host, port=service.port, timeout=120.0)


@pytest.fixture
def slow_experiment():
    """A registered experiment that counts its invocations (in-process)."""
    calls = []

    @experiment(
        "svc_test_slow",
        description="service-test experiment counting invocations",
        paper_reference="(test)",
    )
    def run(*, delay=0.3, tag=0):
        time.sleep(delay)
        calls.append(tag)
        return [{"tag": tag}]

    try:
        yield "svc_test_slow", calls
    finally:
        _REGISTRY.pop("svc_test_slow", None)


class TestServerBasics:
    def test_ping(self, client):
        import repro

        response = client.ping()
        assert response["pong"] is True
        assert response["server"] == "repro.service"
        assert response["version"] == repro.__version__

    def test_stats_shape(self, client):
        stats = client.stats()
        assert stats["queue_depth"] == 0
        assert stats["workers"] == 1
        assert stats["jobs"]["submitted"] == 0
        assert stats["cache_hit_rate"] is None
        assert stats["store"]["entries"] == 0

    def test_submit_computes_and_returns_rows(self, client):
        response = client.submit([BatchJob("table1", quick=True)])
        (ticket,) = response["tickets"]
        assert ticket["state"] == "done" and ticket["source"] == "queued"
        (result,) = response["results"]
        assert result["experiment"] == "table1"
        assert result["rows"] and result["cached"] is False
        assert result["config_hash"] == config_hash(BatchJob("table1", quick=True))

    def test_resubmit_hits_the_store(self, client):
        job = {"experiment": "table1", "quick": True}
        first = client.submit([job])
        second = client.submit([job])
        assert second["tickets"][0]["source"] in ("memory", "store")
        assert second["results"][0]["cached"] is True
        assert second["results"][0]["rows"] == first["results"][0]["rows"]
        stats = client.stats()
        assert stats["jobs"]["computed"] == 1
        assert stats["jobs"]["submitted"] == 2

    def test_progress_events_stream(self, client):
        events = []
        client.submit(
            [BatchJob("table1", quick=True), BatchJob("table2", {"sizes": (2,)})],
            on_progress=events.append,
        )
        assert len(events) == 2
        assert events[-1]["completed"] == 2 and events[-1]["total"] == 2
        assert {e["state"] for e in events} == {"done"}

    def test_no_wait_tickets_then_status_then_fetch(self, client):
        response = client.submit([BatchJob("table1", quick=True)], wait=False)
        digest = response["tickets"][0]["hash"]
        assert "results" not in response
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            (state,) = client.status([digest])
            if state["state"] == "done":
                break
            time.sleep(0.05)
        assert state["state"] == "done"
        fetched = client.fetch([digest])
        assert fetched["missing"] == []
        assert fetched["results"][0]["rows"]

    def test_status_unknown_hash(self, client):
        (state,) = client.status(["00000000deadbeef"])
        assert state["state"] == "unknown"

    def test_fetch_missing_and_all(self, client):
        assert client.fetch(["00000000deadbeef"])["missing"] == ["00000000deadbeef"]
        client.submit([BatchJob("table1", quick=True)])
        everything = client.fetch(all=True)
        assert len(everything["results"]) == 1

    def test_failing_job_reports_error_and_retries(self, client):
        response = client.submit([{"experiment": "table1", "params": {"bogus_kw": 1}}])
        (ticket,) = response["tickets"]
        assert ticket["state"] == "failed"
        assert "bogus_kw" in ticket["error"]
        assert response["results"] == [None]
        # A failed design point is retried (not served from memory) later.
        again = client.submit([{"experiment": "table1", "params": {"bogus_kw": 1}}])
        assert again["tickets"][0]["state"] == "failed"
        assert client.stats()["jobs"]["failed"] == 2

    def test_unknown_experiment_fails_cleanly(self, client):
        response = client.submit([{"experiment": "table42"}])
        assert response["tickets"][0]["state"] == "failed"
        assert "unknown experiment" in response["tickets"][0]["error"]


class TestDedup:
    def test_concurrent_identical_submissions_compute_once(self, client, slow_experiment):
        name, calls = slow_experiment
        job = {"experiment": name, "params": {"delay": 0.5}}

        def submit():
            return client.submit([job])

        with concurrent.futures.ThreadPoolExecutor(max_workers=4) as pool:
            responses = [f.result() for f in [pool.submit(submit) for _ in range(4)]]
        # Every caller got the same completed design point...
        assert all(r["tickets"][0]["state"] == "done" for r in responses)
        assert all(r["results"][0]["rows"] == [{"tag": 0}] for r in responses)
        # ...but the experiment ran exactly once.
        assert len(calls) == 1
        stats = client.stats()
        assert stats["jobs"]["computed"] == 1
        assert stats["jobs"]["coalesced"] + stats["jobs"]["memory_hits"] == 3

    def test_duplicates_inside_one_submission_compute_once(self, client, slow_experiment):
        name, calls = slow_experiment
        job = {"experiment": name, "params": {"delay": 0.05}}
        response = client.submit([job, job, job])
        assert len(response["results"]) == 3
        assert len(calls) == 1
        assert client.stats()["jobs"]["coalesced"] == 2


class TestSweepAcceptance:
    def test_sweep_submitted_twice_computes_each_point_once(self, client):
        """The PR's acceptance scenario: dedup + durable store hits."""
        grid = sweep(Scenario.mesh(3), design=("regular", "waw_wap"))
        first = client.submit_scenarios(grid, quick=True)
        assert [t["source"] for t in first["tickets"]] == ["queued", "queued"]
        second = client.submit_scenarios(grid, quick=True)
        assert all(t["source"] in ("memory", "store") for t in second["tickets"])
        assert all(r["cached"] for r in second["results"])
        stats = client.stats()
        assert stats["jobs"]["computed"] == 2  # exactly once per design point
        assert stats["jobs"]["submitted"] == 4
        labels = {r["rows"][0]["scenario"] for r in second["results"]}
        assert labels == {"regular-3x3", "waw_wap-3x3"}

    def test_results_survive_daemon_restart(self, tmp_path):
        store_dir = str(tmp_path / "store")
        job = {"experiment": "table1", "quick": True}
        with start_service_thread(port=0, store_dir=store_dir) as handle:
            ServiceClient(port=handle.port).submit([job])
        with start_service_thread(port=0, store_dir=store_dir) as handle:
            reborn = ServiceClient(port=handle.port)
            response = reborn.submit([job])
            assert response["tickets"][0]["source"] == "store"
            assert response["results"][0]["cached"] is True
            stats = reborn.stats()
            assert stats["jobs"]["computed"] == 0
            assert stats["jobs"]["store_hits"] == 1

    def test_store_is_shared_with_the_batch_engine(self, service, client, tmp_path):
        from repro.api import BatchEngine

        client.submit([{"experiment": "table1", "quick": True}])
        engine = BatchEngine(store=ResultStore(service.service.store.root))
        result = engine.run(BatchJob("table1", quick=True))
        assert result.cached  # computed by the daemon, reused by the engine


class TestServerRobustness:
    def test_malformed_line_gets_error_response(self, service):
        with socket.create_connection(service.address, timeout=10) as conn:
            conn.sendall(b"{ not json\n")
            reply = json.loads(conn.makefile("rb").readline())
        assert reply["ok"] is False and "malformed" in reply["error"]

    def test_unknown_op_gets_error_response(self, service):
        with socket.create_connection(service.address, timeout=10) as conn:
            conn.sendall(encode({"op": "frobnicate"}))
            reply = json.loads(conn.makefile("rb").readline())
        assert reply["ok"] is False and "unknown operation" in reply["error"]

    def test_connection_survives_an_error_line(self, service):
        # One bad request must not kill the connection for the next one.
        with socket.create_connection(service.address, timeout=10) as conn:
            reader = conn.makefile("rb")
            conn.sendall(encode({"op": "frobnicate"}))
            assert json.loads(reader.readline())["ok"] is False
            conn.sendall(encode({"op": "ping"}))
            assert json.loads(reader.readline())["pong"] is True

    def test_client_error_when_daemon_is_down(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        dead = ServiceClient(port=free_port, timeout=5.0)
        with pytest.raises(ServiceError, match="is the daemon running"):
            dead.ping()

    def test_client_raises_on_server_error_response(self, client):
        with pytest.raises(ServiceError, match="non-empty 'jobs'"):
            client._request({"op": "submit", "jobs": []})

    def test_service_constructor_validation(self):
        from repro.service import ReproService

        with pytest.raises(ValueError, match="jobs"):
            ReproService(jobs=0)
        with pytest.raises(ValueError, match="batch_size"):
            ReproService(batch_size=0)

    def test_in_memory_service_has_no_store(self, tmp_path):
        with start_service_thread(port=0, use_store=False) as handle:
            client = ServiceClient(port=handle.port)
            client.submit([{"experiment": "table1", "quick": True}])
            stats = client.stats()
            assert stats["store"] is None
            assert stats["jobs"]["computed"] == 1

    def test_as_results_helper(self, client):
        response = client.submit([{"experiment": "table1", "quick": True}])
        (rebuilt,) = ServiceClient.as_results(response["results"])
        assert rebuilt.experiment == "table1"
        assert rebuilt.rows() == response["results"][0]["rows"]
