"""Tests for the router area model (:mod:`repro.core.area`)."""

from __future__ import annotations

import pytest

from repro.core.area import AreaParameters, noc_area, router_area, waw_wap_overhead
from repro.core.config import regular_mesh_config, waw_wap_config


class TestAreaParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            AreaParameters(flit_width_bits=0)
        with pytest.raises(ValueError):
            AreaParameters(ports=1)
        with pytest.raises(ValueError):
            AreaParameters(max_weight=0)

    def test_from_config(self):
        params = AreaParameters.from_config(waw_wap_config(8, buffer_depth=6))
        assert params.buffer_depth_flits == 6
        assert params.flit_width_bits == 132
        assert params.max_weight == 64


class TestRouterArea:
    def test_baseline_has_no_extras(self):
        breakdown = router_area(AreaParameters())
        assert breakdown.waw_arbiter_extra == 0
        assert breakdown.wap_nic_extra == 0
        assert breakdown.total == breakdown.baseline_total > 0

    def test_buffers_and_crossbar_dominate(self):
        """A sanity property of any credible NoC area decomposition."""
        breakdown = router_area(AreaParameters())
        dominant = breakdown.input_buffers + breakdown.crossbar
        assert dominant > 0.5 * breakdown.baseline_total

    def test_extras_are_small_relative_to_baseline(self):
        breakdown = router_area(AreaParameters(), with_waw=True, with_wap=True)
        assert breakdown.waw_arbiter_extra < 0.1 * breakdown.baseline_total
        assert breakdown.wap_nic_extra < 0.02 * breakdown.baseline_total

    def test_area_grows_with_buffer_depth_and_width(self):
        small = router_area(AreaParameters(buffer_depth_flits=2, flit_width_bits=64)).total
        large = router_area(AreaParameters(buffer_depth_flits=8, flit_width_bits=256)).total
        assert large > small

    def test_as_dict_totals_are_consistent(self):
        breakdown = router_area(AreaParameters(), with_waw=True, with_wap=True)
        data = breakdown.as_dict()
        parts = sum(v for k, v in data.items() if k != "total")
        assert data["total"] == pytest.approx(parts)


class TestOverheadClaim:
    def test_paper_claim_under_five_percent(self):
        """Section III: the area increase incurred in the NoC is below 5 %."""
        assert waw_wap_overhead(waw_wap_config(8)) < 0.05

    def test_overhead_positive(self):
        assert waw_wap_overhead(waw_wap_config(8)) > 0

    def test_overhead_shrinks_with_wider_links(self):
        """The WaW counters do not scale with the datapath, so relative cost drops."""
        narrow = AreaParameters(flit_width_bits=64)
        wide = AreaParameters(flit_width_bits=256)
        def rel(params):
            base = router_area(params).total
            enhanced = router_area(params, with_waw=True, with_wap=True).total
            return enhanced / base - 1.0
        assert rel(wide) < rel(narrow)

    def test_noc_area_scales_with_node_count(self):
        small = noc_area(regular_mesh_config(2))
        large = noc_area(regular_mesh_config(8))
        assert large == pytest.approx(small * 16)
