"""Tests for the WaW weight model (:mod:`repro.core.weights`), incl. Table I."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flows import FlowSet
from repro.core.weights import (
    PortCounts,
    WeightTable,
    paper_port_counts,
    round_robin_weight,
    source_port_counts,
    waw_weight,
)
from repro.geometry import Coord, Mesh, Port


class TestClosedForms:
    def test_paper_formulas_verbatim(self):
        """The closed forms exactly as printed (N=M=2, router (1,1))."""
        mesh = Mesh(2, 2)
        counts = paper_port_counts(mesh, Coord(1, 1))
        assert counts.input_count(Port.XPLUS) == 1
        assert counts.input_count(Port.YPLUS) == 2
        assert counts.input_count(Port.LOCAL) == 1
        assert counts.output_count(Port.LOCAL) == 3
        # The printed X- closed form counts one node beyond the mesh edge.
        assert counts.output_count(Port.XMINUS) == 2

    def test_source_counts_fix_the_xminus_off_by_one(self):
        mesh = Mesh(2, 2)
        counts = source_port_counts(mesh, Coord(1, 1))
        # Only the node itself can send traffic out of the X- output of the
        # right-most column, which is what the paper's Table I example uses.
        assert counts.output_count(Port.XMINUS) == 1
        assert counts.input_count(Port.XMINUS) == 0

    def test_source_counts_equal_paper_forms_on_non_xminus_ports(self):
        mesh = Mesh(8, 8)
        for router in [Coord(0, 0), Coord(3, 5), Coord(7, 7), Coord(4, 0)]:
            paper = paper_port_counts(mesh, router)
            source = source_port_counts(mesh, router)
            for port in (Port.XPLUS, Port.YPLUS, Port.YMINUS, Port.LOCAL):
                assert paper.input_count(port) == source.input_count(port)
                assert paper.output_count(port) == source.output_count(port)

    @given(
        w=st.integers(2, 8), h=st.integers(2, 8),
        x=st.integers(0, 7), y=st.integers(0, 7),
    )
    @settings(max_examples=50)
    def test_source_counts_match_all_to_all_flow_accounting(self, w, h, x, y):
        """The closed-form source counts equal counting over explicit flows."""
        if x >= w or y >= h:
            return
        mesh = Mesh(w, h)
        router = Coord(x, y)
        closed = source_port_counts(mesh, router)
        flows = FlowSet.all_to_all(mesh)
        for port in mesh.input_ports(router):
            assert closed.input_count(port) == flows.port_source_count(router, port, "in")
        for port in mesh.output_ports(router):
            assert closed.output_count(port) == flows.port_source_count(router, port, "out")


class TestWaWWeight:
    def test_weight_is_input_over_output(self):
        counts = PortCounts(Coord(1, 1), {Port.XPLUS: 2}, {Port.LOCAL: 6})
        assert waw_weight(counts, Port.XPLUS, Port.LOCAL) == Fraction(1, 3)

    def test_zero_output_count_gives_zero_weight(self):
        counts = PortCounts(Coord(0, 0), {Port.XPLUS: 1}, {Port.YMINUS: 0})
        assert waw_weight(counts, Port.XPLUS, Port.YMINUS) == 0


class TestTableI:
    """The paper's worked example: router R(1,1) of a 2x2 mesh."""

    def setup_method(self):
        self.mesh = Mesh(2, 2)
        self.flows = FlowSet.all_to_all(self.mesh)
        self.table = WeightTable.from_flow_set(self.flows, granularity="source")
        self.router = Coord(1, 1)

    def test_pme_output_split_one_third_two_thirds(self):
        assert self.table.weight(self.router, Port.XPLUS, Port.LOCAL) == Fraction(1, 3)
        assert self.table.weight(self.router, Port.YPLUS, Port.LOCAL) == Fraction(2, 3)

    def test_local_injection_weights(self):
        assert self.table.weight(self.router, Port.LOCAL, Port.XMINUS) == Fraction(1, 1)
        assert self.table.weight(self.router, Port.LOCAL, Port.YMINUS) == Fraction(1, 2)

    def test_turning_flow_weight(self):
        assert self.table.weight(self.router, Port.XPLUS, Port.YMINUS) == Fraction(1, 2)

    def test_round_robin_gives_equal_shares(self):
        rr = round_robin_weight(self.mesh, self.router, Port.XPLUS, Port.LOCAL, self.flows)
        assert rr == Fraction(1, 2)
        rr_y = round_robin_weight(self.mesh, self.router, Port.YPLUS, Port.LOCAL, self.flows)
        assert rr_y == Fraction(1, 2)

    def test_round_robin_single_user_port(self):
        rr = round_robin_weight(self.mesh, self.router, Port.LOCAL, Port.XMINUS, self.flows)
        assert rr == Fraction(1, 1)

    def test_table_rows_cover_the_paper_rows(self):
        rows = {(i.value, o.value): w for i, o, w in self.table.table_rows(self.router)}
        assert rows[("X+", "PME")] == Fraction(1, 3)
        assert rows[("Y+", "PME")] == Fraction(2, 3)
        assert rows[("PME", "X-")] == Fraction(1, 1)
        assert rows[("PME", "Y-")] == Fraction(1, 2)
        assert rows[("X+", "Y-")] == Fraction(1, 2)


class TestWeightTable:
    def test_from_closed_form_default_uses_source_counts(self):
        mesh = Mesh(4, 4)
        table = WeightTable.from_closed_form(mesh)
        assert table.output_round_flits(Coord(0, 0), Port.LOCAL) == 15

    def test_from_closed_form_as_printed(self):
        mesh = Mesh(2, 2)
        table = WeightTable.from_closed_form(mesh, as_printed=True)
        # The printed formulas keep the X- off-by-one.
        assert table.output_round_flits(Coord(1, 1), Port.XMINUS) == 2

    def test_from_flow_set_granularity_validation(self):
        mesh = Mesh(2, 2)
        flows = FlowSet.all_to_all(mesh)
        with pytest.raises(ValueError):
            WeightTable.from_flow_set(flows, granularity="packets")

    def test_memory_traffic_weights_concentrate_on_ejection(self):
        mesh = Mesh(8, 8)
        flows = FlowSet.all_to_one(mesh, Coord(0, 0))
        table = WeightTable.from_flow_set(flows)
        # All 63 flows end at the ejection port of the memory controller.
        assert table.output_round_flits(Coord(0, 0), Port.LOCAL) == 63
        # The Y- input of the MC carries the 56 flows of the 7 other rows.
        assert table.input_credits(Coord(0, 0), Port.YMINUS) == 56
        assert table.input_credits(Coord(0, 0), Port.XMINUS) == 7

    def test_arbitration_weights_cover_all_legal_inputs(self):
        mesh = Mesh(4, 4)
        table = WeightTable.from_closed_form(mesh)
        weights = table.arbitration_weights(Coord(2, 2), Port.YMINUS)
        assert set(weights) == {Port.YMINUS, Port.XPLUS, Port.XMINUS, Port.LOCAL}
        assert all(w >= 0 for w in weights.values())

    def test_weights_sum_matches_output_count_at_interior_router(self):
        """Input weights of an output port sum to (at most) the output count."""
        mesh = Mesh(6, 6)
        table = WeightTable.from_closed_form(mesh)
        flows = FlowSet.all_to_all(mesh)
        for router in [Coord(2, 3), Coord(4, 1)]:
            for out_port in mesh.output_ports(router):
                total_in = sum(
                    flows.port_source_count(router, p, "in")
                    for p in table.arbitration_weights(router, out_port)
                    if p is not Port.LOCAL
                ) + 1  # the local node itself
                assert table.output_round_flits(router, out_port) <= total_in

    def test_counts_rejects_unknown_router(self):
        mesh = Mesh(2, 2)
        table = WeightTable.from_closed_form(mesh)
        with pytest.raises(ValueError):
            table.counts(Coord(5, 5))


class TestRoundRobinLookupRegression:
    """The flow-aware round-robin weight must not re-derive the output's
    flow tuple once per input port (the old quadratic pattern)."""

    class _CountingFlows:
        """Delegate that counts lookups into a wrapped FlowSet."""

        def __init__(self, inner):
            self._inner = inner
            self.output_lookups = 0
            self.input_lookups = 0

        def flows_through_output(self, router, port):
            self.output_lookups += 1
            return self._inner.flows_through_output(router, port)

        def flows_through_input(self, router, port):
            self.input_lookups += 1
            return self._inner.flows_through_input(router, port)

    def test_one_output_lookup_per_call(self):
        mesh = Mesh(4, 4)
        flows = self._CountingFlows(FlowSet.all_to_one(mesh, Coord(0, 0)))
        round_robin_weight(mesh, Coord(2, 2), Port.XPLUS, Port.XPLUS, flows)
        assert flows.output_lookups == 1
        # One membership probe per legal input, not per (input, flow) pair.
        assert flows.input_lookups <= 5

    def test_set_membership_matches_quadratic_reference(self):
        """Identical Fractions to the old per-flow scan on all-to-one traffic."""
        mesh = Mesh(4, 4)
        flows = FlowSet.all_to_one(mesh, Coord(0, 0))
        for router in mesh.nodes():
            for out_port in mesh.output_ports(router):
                through_output = flows.flows_through_output(router, out_port)
                from repro.topology import as_topology

                legal = as_topology(mesh).legal_inputs_for_output(router, out_port)
                reference_active = [
                    p
                    for p in legal
                    if any(
                        f in through_output
                        for f in flows.flows_through_input(router, p)
                    )
                ]
                for in_port in mesh.input_ports(router):
                    expected = (
                        Fraction(1, len(reference_active))
                        if reference_active and in_port in reference_active
                        else Fraction(0)
                    )
                    assert (
                        round_robin_weight(mesh, router, in_port, out_port, flows)
                        == expected
                    ), (router, in_port, out_port)


class TestWeightTableCountsError:
    def test_missing_router_error_names_origin_and_coverage(self):
        mesh = Mesh(2, 2)
        table = WeightTable(mesh, {Coord(0, 0): source_port_counts(mesh, Coord(0, 0))})
        with pytest.raises(KeyError) as excinfo:
            table.counts(Coord(1, 1))
        message = str(excinfo.value)
        assert "(1,1)" in message
        assert "explicit per-router counts" in message
        assert "1 of 4 routers" in message

    def test_flow_set_origin_in_error(self):
        mesh = Mesh(3, 3)
        flows = FlowSet.all_to_one(mesh, Coord(0, 0))
        full = WeightTable.from_flow_set(flows)
        partial = WeightTable(
            mesh,
            {Coord(0, 0): full.counts(Coord(0, 0))},
            origin=full.origin,
        )
        with pytest.raises(KeyError, match="flow set"):
            partial.counts(Coord(2, 2))

    def test_outside_mesh_still_value_error(self):
        mesh = Mesh(2, 2)
        table = WeightTable.from_closed_form(mesh)
        with pytest.raises(ValueError):
            table.counts(Coord(9, 9))
