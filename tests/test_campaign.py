"""Tests of the campaign manager (repro.campaign).

Covers the campaign guarantees end to end: deterministic content-derived
sharding, durable shard checkpoints (interrupt + resume with zero
recomputation and a byte-identical result set), held-out blind validation
(a violation aborts before any blind shard is computed), failed design
points as recorded outcomes, manifest persistence, the structured report
(pinned by ``tests/golden/campaign/report.json``) and the ``campaign``
CLI subcommands.
"""

from __future__ import annotations

import json
import os

import pytest

import repro
from repro.api import BatchJob, ExperimentResult, config_hash, sweep_jobs
from repro.campaign import (
    CHECKPOINT_EXPERIMENT,
    ROLE_BLIND,
    ROLE_HOLDOUT,
    Campaign,
    CampaignError,
    HoldoutViolation,
    make_shards,
    shard_id_for,
)
from repro.experiments.runner import main
from repro.service import ResultStore

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "campaign", "report.json"
)

#: An intentionally invalid design point: fails inside the worker with a
#: deterministic ScenarioError, exercising the recorded-failure path.
BAD_JOB = BatchJob(
    "scenario_wctt", {"scenario": {"mesh_width": 2, "design": "nope"}}
)


def grid_jobs():
    """The canonical 4-point test grid (2x2 sweep, quick)."""
    return sweep_jobs(mesh=(2, 3), design=("regular", "waw_wap"), quick=True)


def build_campaign_golden(store_root):
    """The pinned golden campaign's deterministic result set.

    The package version is pinned for the duration (config hashes fold it
    in), so the golden file survives releases; shared with
    ``tools/make_golden.py`` for regeneration.
    """
    original = repro.__version__
    repro.__version__ = "golden"
    try:
        jobs = grid_jobs() + [BAD_JOB]
        campaign = Campaign(
            jobs,
            name="golden",
            shard_size=2,
            holdout=1,
            acceptance=lambda record: True,
            store=ResultStore(str(store_root)),
        )
        report = campaign.run()
        return json.loads(json.dumps(report.result_set(), sort_keys=True))
    finally:
        repro.__version__ = original


# ----------------------------------------------------------------------
# Sharding
# ----------------------------------------------------------------------
class TestSharding:
    def test_shard_ids_deterministic_and_content_derived(self):
        first = make_shards(grid_jobs(), shard_size=2, holdout=1)
        second = make_shards(grid_jobs(), shard_size=2, holdout=1)
        assert [s.shard_id for s in first] == [s.shard_id for s in second]
        assert [s.role for s in first] == [s.role for s in second]
        # The ID is derived from the member hashes alone.
        for shard in first:
            assert shard.shard_id == shard_id_for(shard.job_hashes)
            assert shard.job_hashes == tuple(config_hash(j) for j in shard.jobs)

    def test_chunking_preserves_grid_order(self):
        jobs = grid_jobs()
        shards = make_shards(jobs, shard_size=3, holdout=1)
        assert [len(s.jobs) for s in shards] == [3, 1]
        assert [j for s in shards for j in s.jobs] == jobs

    def test_holdout_is_smallest_ids(self):
        shards = make_shards(grid_jobs(), shard_size=1, holdout=2)
        held = sorted(s.shard_id for s in shards if s.role == ROLE_HOLDOUT)
        blind = [s.shard_id for s in shards if s.role == ROLE_BLIND]
        assert len(held) == 2
        assert all(h < b for h in held for b in blind)

    def test_shard_ids_distinct_from_job_hashes(self):
        shards = make_shards(grid_jobs(), shard_size=1, holdout=0)
        for shard in shards:
            assert shard.shard_id != shard.job_hashes[0]

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one shard to unblind"):
            make_shards(grid_jobs(), shard_size=2, holdout=2)
        with pytest.raises(ValueError, match="shard_size"):
            make_shards(grid_jobs(), shard_size=0, holdout=0)
        with pytest.raises(ValueError, match="at least one job"):
            make_shards([], shard_size=1, holdout=0)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
class TestCampaignRun:
    def test_run_checkpoints_every_shard(self, tmp_path):
        store = ResultStore(str(tmp_path))
        campaign = Campaign(grid_jobs(), name="t", shard_size=2, holdout=1, store=store)
        report = campaign.run()
        assert report.holdout_passed
        assert report.summary() == {
            "shards": 2,
            "holdout_shards": 1,
            "pending_shards": 0,
            "jobs": 4,
            "ok": 4,
            "failed": 0,
            "experiments": {"scenario_wctt": 4},
        }
        for shard in campaign.shards():
            checkpoint = store.get(shard.shard_id)
            assert checkpoint is not None
            assert checkpoint.experiment == CHECKPOINT_EXPERIMENT

    def test_failed_point_is_recorded_not_fatal(self, tmp_path):
        # One shard holds a good and a bad design point: the bad one becomes
        # a recorded failed outcome, its sibling's result survives.
        jobs = [grid_jobs()[0], BAD_JOB]
        campaign = Campaign(
            jobs, name="t", shard_size=2, holdout=0, store=ResultStore(str(tmp_path))
        )
        report = campaign.run()
        statuses = [j["status"] for j in report.to_dict()["shards"][0]["jobs"]]
        assert statuses == ["ok", "failed"]
        (failed,) = report.failed_points()
        assert "ScenarioError" in failed["error"]
        assert report.summary()["failed"] == 1
        assert any("failed design point" in note for note in report.anomalies())

    def test_acceptance_predicate_contract_violation(self, tmp_path):
        campaign = Campaign(
            grid_jobs(), name="t", shard_size=2, holdout=1,
            acceptance=lambda record: 42, store=ResultStore(str(tmp_path)),
        )
        with pytest.raises(CampaignError, match="acceptance predicate returned"):
            campaign.run()

    def test_campaign_id_stable_for_same_grid(self, tmp_path):
        store = ResultStore(str(tmp_path))
        a = Campaign(grid_jobs(), name="t", shard_size=2, holdout=1, store=store)
        b = Campaign(grid_jobs(), name="t", shard_size=2, holdout=1, store=store)
        c = Campaign(grid_jobs(), name="other", shard_size=2, holdout=1, store=store)
        assert a.campaign_id == b.campaign_id
        assert a.campaign_id != c.campaign_id


class TestResume:
    def test_interrupt_and_resume_is_byte_identical_with_zero_recompute(
        self, tmp_path
    ):
        jobs = grid_jobs()

        # Uninterrupted reference run in its own store.
        cold = Campaign(
            jobs, name="t", shard_size=1, holdout=1,
            store=ResultStore(str(tmp_path / "cold")),
        )
        cold_set = json.dumps(cold.run().result_set(), sort_keys=True)

        # Interrupted run: the progress hook kills the campaign after two
        # completed shards (their checkpoints are already durable).
        warm_root = str(tmp_path / "warm")
        store = ResultStore(warm_root)
        campaign = Campaign(jobs, name="t", shard_size=1, holdout=1, store=store)
        completed = []

        def kill_after_two(shard, record):
            completed.append(shard.shard_id)
            if len(completed) == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            campaign.run(progress=kill_after_two)
        # Two shards each wrote one job result plus one checkpoint.
        assert store.writes == 4

        # Resume in a fresh store instance so the write counter isolates the
        # resumed run: only the two remaining shards may compute.
        resume_store = ResultStore(warm_root)
        resumed = Campaign(jobs, name="t", shard_size=1, holdout=1, store=resume_store)
        report = resumed.run()
        assert resume_store.writes == 4  # 2 remaining shards x (result + checkpoint)
        flags = {s["shard_id"]: s["resumed"] for s in report.to_dict()["shards"]}
        assert sorted(k for k, v in flags.items() if v) == sorted(completed)
        assert json.dumps(report.result_set(), sort_keys=True) == cold_set

    def test_fully_resumed_run_writes_nothing(self, tmp_path):
        root = str(tmp_path)
        Campaign(grid_jobs(), name="t", shard_size=2, holdout=1,
                 store=ResultStore(root)).run()
        store = ResultStore(root)
        report = Campaign(
            grid_jobs(), name="t", shard_size=2, holdout=1, store=store
        ).run()
        assert store.writes == 0
        assert report.timing()["resumed_shards"] == 2

    def test_resume_false_recomputes(self, tmp_path):
        root = str(tmp_path)
        Campaign(grid_jobs(), name="t", shard_size=2, holdout=1,
                 store=ResultStore(root)).run()
        store = ResultStore(root)
        report = Campaign(
            grid_jobs(), name="t", shard_size=2, holdout=1, store=store
        ).run(resume=False)
        assert report.timing()["resumed_shards"] == 0
        assert store.writes >= 2  # at least the two rewritten checkpoints

    def test_stale_checkpoint_is_ignored(self, tmp_path):
        store = ResultStore(str(tmp_path))
        campaign = Campaign(grid_jobs(), name="t", shard_size=2, holdout=1, store=store)
        shard = campaign.shards()[0]
        # A checkpoint whose recorded job hashes do not match the shard
        # (e.g. written by a different grid) must not be resumed from.
        store.put(
            shard.shard_id,
            ExperimentResult(
                experiment=CHECKPOINT_EXPERIMENT,
                payload=[{"config_hash": "feedfacefeedface", "status": "ok"}],
                params={"executor": "engine"},
            ),
        )
        report = campaign.run()
        record = report.to_dict()["shards"][shard.index]
        assert record["resumed"] is False
        assert [j["status"] for j in record["jobs"]] == ["ok", "ok"]


class TestHoldout:
    def test_violation_aborts_before_any_blind_shard(self, tmp_path):
        store = ResultStore(str(tmp_path))
        campaign = Campaign(
            grid_jobs(), name="t", shard_size=1, holdout=1,
            acceptance=lambda record: "bound looks implausible",
            store=store,
        )
        with pytest.raises(HoldoutViolation, match="refusing to unblind"):
            campaign.run()
        for shard in campaign.shards():
            checkpointed = store.get(shard.shard_id) is not None
            assert checkpointed == (shard.role == ROLE_HOLDOUT)

    def test_default_acceptance_rejects_failed_holdout_points(self, tmp_path):
        # Every design point fails, so whichever shard is held out fails
        # acceptance and the campaign refuses to unblind.
        bad_jobs = [
            BatchJob("scenario_wctt", {"scenario": {"mesh_width": 2, "design": d}})
            for d in ("nope", "bogus")
        ]
        campaign = Campaign(
            bad_jobs, name="t", shard_size=1, holdout=1,
            store=ResultStore(str(tmp_path)),
        )
        with pytest.raises(HoldoutViolation, match="ScenarioError"):
            campaign.run()

    def test_fixed_acceptance_resumes_from_holdout_checkpoints(self, tmp_path):
        root = str(tmp_path)
        strict = Campaign(
            grid_jobs(), name="t", shard_size=1, holdout=1,
            acceptance=lambda record: False, store=ResultStore(root),
        )
        with pytest.raises(HoldoutViolation):
            strict.run()
        store = ResultStore(root)
        relaxed = Campaign(
            grid_jobs(), name="t", shard_size=1, holdout=1, store=store
        )
        report = relaxed.run()
        assert report.holdout_passed
        holdout_records = [
            s for s in report.to_dict()["shards"] if s["role"] == ROLE_HOLDOUT
        ]
        assert all(s["resumed"] for s in holdout_records)


class TestManifestAndCollect:
    def test_manifest_roundtrip(self, tmp_path):
        store = ResultStore(str(tmp_path))
        campaign = Campaign(grid_jobs(), name="t", shard_size=2, holdout=1, store=store)
        path = campaign.save_manifest()
        assert os.path.exists(path)
        assert Campaign.saved_campaigns(store) == [campaign.campaign_id]
        loaded = Campaign.load(campaign.campaign_id, store=store)
        assert loaded.campaign_id == campaign.campaign_id
        assert loaded.jobs == campaign.jobs
        assert [s.shard_id for s in loaded.shards()] == [
            s.shard_id for s in campaign.shards()
        ]

    def test_load_unknown_id_raises(self, tmp_path):
        with pytest.raises(CampaignError, match="cannot load campaign"):
            Campaign.load("0123456789abcdef", store=ResultStore(str(tmp_path)))

    def test_manifests_do_not_break_store_maintenance(self, tmp_path):
        store = ResultStore(str(tmp_path))
        campaign = Campaign(grid_jobs(), name="t", shard_size=2, holdout=1, store=store)
        campaign.run()
        # The manifest lives in a subdirectory, invisible to store scans.
        assert store.clear() > 0
        assert store.keys() == []
        assert Campaign.saved_campaigns(store) == [campaign.campaign_id]

    def test_collect_reports_pending_before_and_done_after(self, tmp_path):
        store = ResultStore(str(tmp_path))
        campaign = Campaign(grid_jobs(), name="t", shard_size=2, holdout=1, store=store)
        before = campaign.collect()
        assert not before.holdout_passed
        assert before.summary()["pending_shards"] == 2
        assert any("no checkpoint" in note for note in before.anomalies())
        ran = campaign.run()
        after = campaign.collect()
        assert after.holdout_passed
        assert after.summary()["pending_shards"] == 0
        assert json.dumps(after.result_set(), sort_keys=True) == json.dumps(
            ran.result_set(), sort_keys=True
        )


# ----------------------------------------------------------------------
# Golden report
# ----------------------------------------------------------------------
class TestGoldenReport:
    def test_report_matches_golden(self, tmp_path):
        with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
            golden = json.load(handle)
        fresh = build_campaign_golden(tmp_path)
        assert fresh == golden, (
            "campaign result set diverged from tests/golden/campaign/"
            "report.json; if the change is intentional, regenerate with "
            "`PYTHONPATH=src python tools/make_golden.py campaign` and "
            "explain the diff"
        )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCampaignCLI:
    def test_run_resume_report(self, tmp_path, capsys):
        root = str(tmp_path)
        rc = main([
            "campaign", "run", "--experiment", "table2", "--sizes", "2,3,4",
            "--quick", "--name", "cli", "--shard-size", "1", "--holdout", "1",
            "--store-dir", root,
        ])
        assert rc == 0
        out = capsys.readouterr()
        assert "Campaign report" in out.out
        assert "held-out validation : passed" in out.out

        (campaign_id,) = Campaign.saved_campaigns(ResultStore(root))
        rc = main(["campaign", "resume", campaign_id, "--store-dir", root])
        assert rc == 0
        out = capsys.readouterr()
        assert "resumed from store" in out.err
        assert "resumed shards      : 3" in out.out

        report_path = str(tmp_path / "report.json")
        rc = main([
            "campaign", "report", campaign_id, "--store-dir", root,
            "--json", report_path,
        ])
        assert rc == 0
        with open(report_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["report_format"] == 1
        assert payload["summary"]["pending_shards"] == 0

    def test_unknown_id_lists_saved_campaigns(self, tmp_path, capsys):
        root = str(tmp_path)
        assert main([
            "campaign", "run", "table1", "--name", "cli", "--shard-size", "1",
            "--holdout", "0", "--store-dir", root,
        ]) == 0
        capsys.readouterr()
        rc = main(["campaign", "report", "feedfacefeedface", "--store-dir", root])
        assert rc == 2
        err = capsys.readouterr().err
        assert "cannot load campaign" in err
        assert "saved campaigns:" in err

    def test_holdout_violation_exit_code(self, tmp_path, capsys):
        rc = main([
            "campaign", "run", "--experiment", "scenario_wctt", "--quick",
            "--store-dir", str(tmp_path),
        ])
        # No axes with --experiment is a usage error, exercised for coverage.
        assert rc == 2
        assert "sweep axis" in capsys.readouterr().err
