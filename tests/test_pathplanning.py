"""Tests for the 3D path-planning application (:mod:`repro.workloads.pathplanning`).

Beyond exercising the workload generator, these tests check that the planner
is a *correct* path planner: the returned path must be connected, obstacle
free and consistent with the wavefront distance field.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.manycore.cache import CacheConfig
from repro.workloads.pathplanning import (
    PathPlanningConfig,
    ThreeDPathPlanner,
    plan_path,
)

#: A small configuration keeping individual tests fast.
SMALL = PathPlanningConfig(
    dimensions=(10, 10, 4),
    obstacle_density=0.15,
    seed=7,
    num_threads=4,
    cycles_per_cell_update=20,
    cycles_per_neighbour_check=5,
    cache=CacheConfig(size_bytes=2 * 1024),
    sweeps_per_phase=3,
)


class TestConfigValidation:
    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            PathPlanningConfig(dimensions=(1, 5, 5))

    def test_density_validation(self):
        with pytest.raises(ValueError):
            PathPlanningConfig(obstacle_density=0.95)

    def test_thread_and_phase_validation(self):
        with pytest.raises(ValueError):
            PathPlanningConfig(num_threads=0)
        with pytest.raises(ValueError):
            PathPlanningConfig(sweeps_per_phase=0)

    def test_default_endpoints(self):
        config = PathPlanningConfig(dimensions=(8, 8, 4))
        assert config.resolved_start == (0, 0, 0)
        assert config.resolved_goal == (7, 7, 3)


class TestPlannerCorrectness:
    def setup_method(self):
        self.result = plan_path(SMALL)

    def test_goal_reached_on_default_map(self):
        assert self.result.reached
        assert self.result.path_length > 0

    def test_path_endpoints(self):
        assert self.result.path[0] == SMALL.resolved_start
        assert self.result.path[-1] == SMALL.resolved_goal

    def test_path_is_connected_and_in_bounds(self):
        dims = SMALL.dimensions
        for a, b in zip(self.result.path, self.result.path[1:]):
            assert sum(abs(x - y) for x, y in zip(a, b)) == 1
            assert all(0 <= c < d for c, d in zip(b, dims))

    def test_path_avoids_obstacles(self):
        planner = ThreeDPathPlanner(SMALL)
        result = planner.run()
        for cell in result.path:
            assert not planner.obstacles.get(cell, True)

    def test_path_length_matches_distance_field(self):
        """The wavefront distance equals the number of steps of the path."""
        assert self.result.distance == self.result.path_length - 1

    def test_determinism(self):
        again = plan_path(SMALL)
        assert again.path == self.result.path
        assert again.workload.total_loads == self.result.workload.total_loads

    def test_different_seed_changes_the_map(self):
        other = plan_path(PathPlanningConfig(
            dimensions=SMALL.dimensions, obstacle_density=SMALL.obstacle_density,
            seed=SMALL.seed + 1, num_threads=SMALL.num_threads,
            cache=SMALL.cache, sweeps_per_phase=SMALL.sweeps_per_phase,
        ))
        assert other.path != self.result.path or other.sweeps != self.result.sweeps


class TestWorkloadGeneration:
    def setup_method(self):
        self.result = plan_path(SMALL)
        self.workload = self.result.workload

    def test_workload_structure(self):
        assert self.workload.num_threads == SMALL.num_threads
        names = [phase.name for phase in self.workload.phases]
        assert names[0] == "init"
        assert names[-1] == "backtrack"
        assert any(name.startswith("wave") for name in names)

    def test_workload_has_traffic_and_compute(self):
        assert self.workload.total_loads > 0
        assert self.workload.total_compute_cycles > 0

    def test_per_thread_misses_recorded(self):
        assert set(self.result.per_thread_misses) == set(range(SMALL.num_threads))
        assert sum(self.result.per_thread_misses.values()) > 0

    def test_every_thread_contributes_to_init(self):
        init = self.workload.phases[0]
        assert all(init.work_of(tid).loads > 0 for tid in range(SMALL.num_threads))

    def test_owner_thread_partitions_the_grid(self):
        planner = ThreeDPathPlanner(SMALL)
        owners = {planner.owner_thread((x, y, z))
                  for x in range(SMALL.dimensions[0])
                  for y in range(SMALL.dimensions[1])
                  for z in range(SMALL.dimensions[2])}
        assert owners == set(range(SMALL.num_threads))

    def test_cell_addresses_are_unique(self):
        planner = ThreeDPathPlanner(SMALL)
        addresses = set()
        for x in range(SMALL.dimensions[0]):
            for y in range(SMALL.dimensions[1]):
                for z in range(SMALL.dimensions[2]):
                    addresses.add(planner.cell_address((x, y, z)))
        assert len(addresses) == 10 * 10 * 4

    @given(seed=st.integers(0, 40))
    @settings(max_examples=8, deadline=None)
    def test_any_seed_produces_a_consistent_result(self, seed):
        config = PathPlanningConfig(
            dimensions=(8, 8, 3), obstacle_density=0.2, seed=seed, num_threads=4,
            cycles_per_cell_update=10, cycles_per_neighbour_check=3,
            cache=CacheConfig(size_bytes=1024), sweeps_per_phase=4,
        )
        result = plan_path(config)
        if result.reached:
            assert result.path[0] == config.resolved_start
            assert result.path[-1] == config.resolved_goal
            assert result.distance == len(result.path) - 1
        else:
            assert result.path == []
        # Whatever the map, the workload model must be well formed.
        assert result.workload.num_threads == 4
        assert len(result.workload.phases) >= 2
