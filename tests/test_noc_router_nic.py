"""Router- and NIC-level tests (:mod:`repro.noc.router`, :mod:`repro.noc.nic`)."""

from __future__ import annotations

import pytest

from repro.core.config import regular_mesh_config, waw_wap_config
from repro.geometry import Coord, Port
from repro.noc.flit import Message, Packet
from repro.noc.network import Network
from repro.noc.nic import NIC
from repro.noc.router import Router


def make_flits(src, dst, size):
    message = Message(source=src, destination=dst, payload_flits=size)
    packet = Packet(message=message, size_flits=size, index=0, total=1)
    return packet.make_flits()


class TestRouter:
    def test_ports_match_position(self):
        config = regular_mesh_config(4)
        corner = Router(Coord(0, 0), config)
        assert set(corner.buffers) == {Port.LOCAL, Port.XMINUS, Port.YMINUS}
        interior = Router(Coord(1, 1), config)
        assert len(interior.buffers) == 5

    def test_accept_flit_respects_capacity(self):
        config = regular_mesh_config(4, buffer_depth=2)
        router = Router(Coord(1, 1), config)
        flits = make_flits(Coord(1, 1), Coord(0, 0), 3)
        router.accept_flit(Port.LOCAL, flits[0], 0)
        router.accept_flit(Port.LOCAL, flits[1], 0)
        with pytest.raises(OverflowError):
            router.accept_flit(Port.LOCAL, flits[2], 0)

    def test_head_flit_waits_for_pipeline_latency(self):
        config = regular_mesh_config(4)
        router = Router(Coord(1, 0), config)
        flit = make_flits(Coord(1, 0), Coord(0, 0), 1)[0]
        router.accept_flit(Port.LOCAL, flit, ready_cycle=3)
        events = []
        router.step(0, events)  # not ready yet
        assert not [e for e in events if e[0] == "forward"]
        events = []
        router.step(3, events)
        forwards = [e for e in events if e[0] == "forward"]
        assert len(forwards) == 1
        assert forwards[0][2] is Port.XMINUS  # XY routing towards (0,0)

    def test_ejection_event_for_local_destination(self):
        config = regular_mesh_config(4)
        router = Router(Coord(0, 0), config)
        flit = make_flits(Coord(1, 0), Coord(0, 0), 1)[0]
        router.accept_flit(Port.XMINUS, flit, ready_cycle=0)
        events = []
        router.step(0, events)
        assert any(e[0] == "eject" for e in events)
        assert any(e[0] == "credit" and e[2] is Port.XMINUS for e in events)

    def test_output_lock_until_tail(self):
        """A multi-flit packet holds its output port until the tail leaves."""
        config = regular_mesh_config(4)
        router = Router(Coord(1, 0), config)
        for flit in make_flits(Coord(1, 0), Coord(0, 0), 3):
            router.accept_flit(Port.LOCAL, flit, ready_cycle=0)
        events = []
        router.step(0, events)
        assert router.output_owner[Port.XMINUS] is Port.LOCAL
        router.step(1, events)
        assert router.output_owner[Port.XMINUS] is Port.LOCAL
        router.step(2, events)  # tail forwarded
        assert router.output_owner[Port.XMINUS] is None
        forwards = [e for e in events if e[0] == "forward"]
        assert len(forwards) == 3

    def test_no_forward_without_credit(self):
        config = regular_mesh_config(4, buffer_depth=1)
        router = Router(Coord(1, 0), config)
        router.output_credits[Port.XMINUS] = 0
        flit = make_flits(Coord(1, 0), Coord(0, 0), 1)[0]
        router.accept_flit(Port.LOCAL, flit, ready_cycle=0)
        events = []
        router.step(0, events)
        assert not [e for e in events if e[0] == "forward"]
        router.return_credit(Port.XMINUS)
        router.step(1, events)
        assert [e for e in events if e[0] == "forward"]

    def test_credit_overflow_detected(self):
        config = regular_mesh_config(4)
        router = Router(Coord(1, 1), config)
        with pytest.raises(RuntimeError):
            router.return_credit(Port.XPLUS)

    def test_waw_router_builds_weighted_arbiters(self):
        from repro.core.arbitration import WeightedRoundRobinArbiter
        from repro.core.weights import WeightTable

        config = waw_wap_config(4)
        table = WeightTable.from_closed_form(config.mesh)
        router = Router(Coord(2, 2), config, table)
        assert all(
            isinstance(arb, WeightedRoundRobinArbiter) for arb in router.arbiters.values()
        )


class TestNIC:
    def test_send_message_validates_source(self):
        nic = NIC(Coord(1, 1), regular_mesh_config(4))
        wrong = Message(source=Coord(2, 2), destination=Coord(0, 0), payload_flits=1)
        with pytest.raises(ValueError):
            nic.send_message(wrong, 0)

    def test_regular_nic_queues_payload_flits(self):
        nic = NIC(Coord(1, 1), regular_mesh_config(4, max_packet_flits=4))
        message = Message(source=Coord(1, 1), destination=Coord(0, 0), payload_flits=4)
        nic.send_message(message, now=5)
        assert nic.pending_injection_flits() == 4
        assert message.created_cycle == 5

    def test_wap_nic_adds_control_flit_to_cache_line(self):
        nic = NIC(Coord(1, 1), waw_wap_config(4))
        message = Message(source=Coord(1, 1), destination=Coord(0, 0), payload_flits=4)
        nic.send_message(message, now=0)
        assert nic.pending_injection_flits() == 5  # the paper's 25 % overhead

    def test_injection_respects_credits_and_rate(self):
        config = regular_mesh_config(4, buffer_depth=2)
        nic = NIC(Coord(1, 1), config)
        message = Message(source=Coord(1, 1), destination=Coord(0, 0), payload_flits=4)
        nic.send_message(message, now=0)
        events = []
        for cycle in range(3):
            nic.step(cycle, events)
        # Only two credits were available: two flits injected, queue holds the rest.
        assert len([e for e in events if e[0] == "inject"]) == 2
        assert nic.injection_credits == 0
        nic.return_injection_credit()
        nic.step(3, events)
        assert len([e for e in events if e[0] == "inject"]) == 3

    def test_reassembly_and_listener(self):
        config = waw_wap_config(4)
        sender = NIC(Coord(1, 1), config)
        receiver = NIC(Coord(0, 0), config)
        completed = []
        receiver.add_listener(lambda message, cycle: completed.append((message, cycle)))

        message = Message(source=Coord(1, 1), destination=Coord(0, 0), payload_flits=4)
        sender.send_message(message, now=0)
        events = []
        while sender.has_work():
            sender.step(len(events), events)
            sender.return_injection_credit()
        flits = [e[2] for e in events if e[0] == "inject"]
        for i, flit in enumerate(flits[:-1]):
            receiver.receive_flit(flit, now=10 + i)
            assert not completed  # incomplete until the last slice arrives
        receiver.receive_flit(flits[-1], now=42)
        assert len(completed) == 1
        assert completed[0][0] is message
        assert message.completion_cycle == 42
        assert receiver.in_flight_messages() == 0

    def test_misrouted_flit_detected(self):
        config = regular_mesh_config(4)
        nic = NIC(Coord(3, 3), config)
        flits = make_flits(Coord(1, 1), Coord(0, 0), 1)
        with pytest.raises(RuntimeError):
            nic.receive_flit(flits[0], now=0)


class TestEndToEndCreditReturn:
    def test_injection_credits_recover_after_delivery(self):
        config = regular_mesh_config(3, buffer_depth=2)
        network = Network(config)
        nic = network.nic(Coord(2, 2))
        network.send(Coord(2, 2), Coord(0, 0), 4)
        network.run_until_idle(max_cycles=2_000)
        assert nic.injection_credits == config.buffer_depth
