"""The AnalysisBackend registry and the competing flow-aware analyses.

Everything here runs without numpy: the ``vector`` backend is only exercised
through its ``supports`` predicate (which reports "numpy is not installed"
when the import guard tripped) so the scalar fallback paths stay covered by
the no-numpy CI job.
"""

from __future__ import annotations

import pytest

from repro.analysis.backends import (
    AnalysisBackend,
    HolisticAnalysisBackend,
    PaperAnalysisBackend,
    available_analysis_backends,
    make_analysis_backend,
    normalize_analysis_backend_name,
    register_analysis_backend,
)
from repro.analysis.flowaware import (
    FlowAwareWCTTAnalysis,
    HolisticAnalysis,
    TrajectoryAnalysis,
)
from repro.api.results import unwrap
from repro.api.scenario import Scenario, ScenarioError, sweep
from repro.core import (
    FlowSet,
    UBDTable,
    WeightTable,
    make_wctt_analysis,
    regular_mesh_config,
    waw_wap_config,
)
from repro.core.wctt_weighted import WaWWaPWCTTAnalysis
from repro.experiments import scenario_wctt
from repro.geometry import Coord


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_canonical_names(self):
        assert available_analysis_backends() == [
            "holistic",
            "regular",
            "trajectory",
            "vector",
            "weighted",
        ]

    @pytest.mark.parametrize(
        "alias,canonical",
        [
            ("regular-mesh", "regular"),
            ("waw_wap", "weighted"),
            ("waw-wap", "weighted"),
            ("numpy", "vector"),
            ("holistic", "holistic"),
        ],
    )
    def test_aliases_resolve(self, alias, canonical):
        assert normalize_analysis_backend_name(alias) == canonical

    def test_unknown_name_lists_known_backends(self):
        with pytest.raises(ValueError, match="holistic.*trajectory"):
            normalize_analysis_backend_name("bogus")

    def test_make_is_singleton_per_name(self):
        assert make_analysis_backend("holistic") is make_analysis_backend("holistic")
        assert isinstance(make_analysis_backend("holistic"), HolisticAnalysisBackend)

    def test_make_passes_instances_through(self):
        backend = HolisticAnalysisBackend()
        assert make_analysis_backend(backend) is backend

    def test_make_rejects_non_names(self):
        with pytest.raises(TypeError, match="AnalysisBackend"):
            make_analysis_backend(42)

    def test_none_resolves_to_paper_dispatch(self):
        backend = make_analysis_backend(None)
        assert isinstance(backend, PaperAnalysisBackend)
        waw = waw_wap_config(3, 3)
        regular = regular_mesh_config(3, 3)
        assert isinstance(backend.analysis(waw), WaWWaPWCTTAnalysis)
        assert backend.wctt_summary(waw) == make_analysis_backend(
            "weighted"
        ).wctt_summary(waw)
        assert backend.wctt_summary(regular) == make_analysis_backend(
            "regular"
        ).wctt_summary(regular)

    def test_register_rejects_abstract_name(self):
        class Nameless(AnalysisBackend):
            pass

        with pytest.raises(ValueError, match="concrete name"):
            register_analysis_backend(Nameless)


# ----------------------------------------------------------------------
# Applicability
# ----------------------------------------------------------------------
class TestSupports:
    def test_regular_refuses_weighted_arbitration(self):
        backend = make_analysis_backend("regular")
        assert backend.supports(regular_mesh_config(3, 3)) is None
        reason = backend.supports(waw_wap_config(3, 3))
        assert reason is not None and "round-robin" in reason

    def test_weighted_requires_waw_wap(self):
        backend = make_analysis_backend("weighted")
        assert backend.supports(waw_wap_config(3, 3)) is None
        assert backend.supports(regular_mesh_config(3, 3)) is not None

    @pytest.mark.parametrize("name", ["holistic", "trajectory"])
    @pytest.mark.parametrize("design", ["regular", "waw_wap"])
    @pytest.mark.parametrize("topology", ["mesh", "torus", "cmesh"])
    def test_flow_aware_backends_are_generic(self, name, design, topology):
        config = Scenario.mesh(3).design(design).topology(topology).build()
        assert make_analysis_backend(name).supports(config) is None

    def test_require_raises_with_backend_name_and_reason(self):
        with pytest.raises(ValueError, match="'regular' does not apply"):
            make_analysis_backend("regular").require(waw_wap_config(3, 3))

    def test_direct_analysis_calls_also_require(self):
        with pytest.raises(ValueError, match="does not apply"):
            make_analysis_backend("regular").analysis(waw_wap_config(3, 3))

    def test_vector_supports_delegates_with_reasons(self):
        backend = make_analysis_backend("vector")
        torus = Scenario.mesh(3).waw_wap().topology("torus").build()
        reason = backend.supports(torus)
        # Without numpy the guard reports the missing dependency instead of
        # the topology; both are valid refusals for the torus.
        assert reason is not None and ("numpy" in reason or "wrap-around" in reason)


# ----------------------------------------------------------------------
# The competing flow-aware analyses
# ----------------------------------------------------------------------
class TestFlowAwareAnalyses:
    def _sparse_flows(self, config, dst):
        mesh = config.mesh
        sources = [
            node
            for node in mesh.nodes()
            if node != dst and (node.x + node.y) % 2 == 0
        ]
        return FlowSet.from_pairs(mesh, [(src, dst) for src in sources])

    @pytest.mark.parametrize("design", ["regular", "waw_wap"])
    def test_sparser_flow_sets_never_raise_the_bound(self, design):
        config = Scenario.mesh(4).design(design).build()
        dst = config.memory_controller
        full = FlowSet.all_to_one(config.mesh, dst)
        sparse = self._sparse_flows(config, dst)
        victim = Coord(2, 2)
        assert Coord(2, 2) in [f.source for f in sparse]
        for cls in (HolisticAnalysis, TrajectoryAnalysis):
            weights = (
                WeightTable.from_flow_set(full) if config.is_waw else None
            )
            dense_bound = cls(config, full, weight_table=weights).wctt_packet(
                victim, dst
            )
            sparse_bound = cls(config, sparse, weight_table=weights).wctt_packet(
                victim, dst
            )
            assert sparse_bound <= dense_bound, cls.__name__

    @pytest.mark.parametrize("design", ["regular", "waw_wap"])
    def test_trajectory_dominates_holistic(self, design):
        config = Scenario.mesh(4).design(design).build()
        dst = config.memory_controller
        for flows in (
            FlowSet.all_to_one(config.mesh, dst),
            self._sparse_flows(config, dst),
        ):
            holistic = HolisticAnalysis(config, flows)
            trajectory = TrajectoryAnalysis(config, flows)
            for flow in flows:
                assert trajectory.wctt_packet(
                    flow.source, flow.destination
                ) >= holistic.wctt_packet(flow.source, flow.destination)

    def test_holistic_full_workload_matches_unregulated_weighted(self):
        # On the full all-to-one workload every input is active with its full
        # credit share, so the flow-aware round equals the weighted bound's
        # round and the local models coincide exactly.
        config = waw_wap_config(4, 4)
        dst = config.memory_controller
        flows = FlowSet.all_to_one(config.mesh, dst)
        weights = WeightTable.from_flow_set(flows)
        holistic = HolisticAnalysis(config, flows, weight_table=weights)
        weighted = WaWWaPWCTTAnalysis(config, weights, regulated_contenders=False)
        for flow in flows:
            assert holistic.wctt_packet(flow.source, dst) == weighted.wctt_packet(
                flow.source, dst
            )

    def test_bounds_exceed_zero_load_latency(self):
        for design in ("regular", "waw_wap"):
            config = Scenario.mesh(3).design(design).build()
            dst = config.memory_controller
            for cls in (HolisticAnalysis, TrajectoryAnalysis):
                analysis = cls(config)
                for node in config.mesh.nodes():
                    if node == dst:
                        continue
                    assert analysis.wctt_packet(node, dst) >= analysis.zero_load_latency(
                        node, dst
                    )

    def test_topology_generic_on_torus_and_cmesh(self):
        for topology in ("torus", "cmesh"):
            config = Scenario.mesh(3).regular().topology(topology).build()
            analysis = HolisticAnalysis(config)
            dst = config.memory_controller
            victim = Coord(2, 2)
            assert analysis.wctt_packet(victim, dst) >= analysis.zero_load_latency(
                victim, dst
            )

    def test_flows_outside_the_set_are_refused(self):
        config = regular_mesh_config(3, 3)
        dst = config.memory_controller
        analysis = HolisticAnalysis(config, self._sparse_flows(config, dst))
        with pytest.raises(ValueError, match="not part of the interfering"):
            analysis.wctt_packet(Coord(1, 0), dst)  # (1+0) % 2 != 0

    def test_empty_flow_set_is_refused(self):
        config = regular_mesh_config(3, 3)
        with pytest.raises(ValueError, match="non-empty"):
            HolisticAnalysis(config, FlowSet.from_pairs(config.mesh, []))

    def test_message_bound_is_slices_times_packet_bound(self):
        config = waw_wap_config(3, 3)
        analysis = HolisticAnalysis(config)
        dst = config.memory_controller
        victim = Coord(2, 2)
        packet = analysis.wctt_packet(victim, dst)
        assert analysis.wctt_message(victim, dst, payload_flits=1) == packet
        slices = config.messages.wap_packets_for_payload_bits(
            4 * config.messages.link_width_bits - config.messages.control_bits
        )
        assert analysis.wctt_message(victim, dst, payload_flits=4) == slices * packet


# ----------------------------------------------------------------------
# Wiring: Scenario / scenario_wctt / UBDTable
# ----------------------------------------------------------------------
class TestWiring:
    def test_scenario_analysis_round_trip(self):
        scenario = Scenario.mesh(3).waw_wap().analysis("holistic")
        assert scenario.settings["analysis"] == "holistic"
        assert scenario.label().endswith("-holistic")
        rebuilt = Scenario.from_dict(scenario.to_dict())
        assert rebuilt.settings == scenario.settings

    def test_scenario_analysis_resolves_aliases_and_rejects_unknowns(self):
        assert Scenario.mesh(3).analysis("numpy").settings["analysis"] == "vector"
        assert "analysis" not in Scenario.mesh(3).analysis(None).settings
        with pytest.raises(ScenarioError, match="known backends"):
            Scenario.mesh(3).analysis("bogus")

    def test_sweep_axis_spans_backends(self):
        grid = sweep(Scenario.mesh(3).waw_wap(), analysis=("holistic", "trajectory"))
        assert [s.settings["analysis"] for s in grid] == ["holistic", "trajectory"]

    def test_scenario_wctt_run_uses_the_backend(self):
        scenario = Scenario.mesh(3).waw_wap()
        rows = unwrap(scenario_wctt.run(scenario=scenario, analysis="holistic"))
        assert len(rows) == 1
        row = rows[0]
        assert row.label.endswith("-holistic")
        summary = make_analysis_backend("holistic").wctt_summary(scenario.build())
        assert row.wctt_max == summary.maximum

    def test_scenario_wctt_default_path_is_unchanged(self):
        scenario = Scenario.mesh(3).waw_wap()
        default = unwrap(scenario_wctt.run(scenario=scenario))
        weighted = unwrap(scenario_wctt.run(scenario=scenario, analysis="weighted"))
        assert default[0].wctt_max == weighted[0].wctt_max
        assert not default[0].label.endswith("-weighted")

    def test_scenario_wctt_rejects_inapplicable_backend(self):
        with pytest.raises(ValueError, match="does not apply"):
            scenario_wctt.run(scenario=Scenario.mesh(3).regular(), analysis="weighted")

    def test_ubd_table_backend_selection(self):
        config = waw_wap_config(3, 3)
        default = UBDTable(config)
        assert UBDTable(config, backend="weighted").as_dict() == default.as_dict()
        # The flow-aware backends fill the same cores; their burst-safe
        # bounds need not match the paper's regulated headline numbers, but
        # the holistic bound never exceeds the trajectory bound.
        holistic = UBDTable(config, backend="holistic")
        trajectory = UBDTable(config, backend="trajectory")
        assert set(holistic.cores()) == set(default.cores())
        for core in holistic.cores():
            assert 0 < holistic.load_ubd(core) <= trajectory.load_ubd(core)

    def test_ubd_table_rejects_backend_and_analysis_together(self):
        config = waw_wap_config(3, 3)
        with pytest.raises(ValueError, match="not both"):
            UBDTable(
                config,
                backend="holistic",
                analysis=make_wctt_analysis(config),
            )
