"""Tests for the report formatting helpers (:mod:`repro.analysis.reporting`)."""

from __future__ import annotations

from repro.analysis.reporting import (
    format_grid,
    format_key_values,
    format_table,
    format_title,
)
from repro.geometry import Coord


class TestFormatTitle:
    def test_underline_length(self):
        rendered = format_title("Hello")
        lines = rendered.splitlines()
        assert lines[0] == "Hello"
        assert lines[1] == "====="

    def test_custom_underline(self):
        assert format_title("ab", underline="-").splitlines()[1] == "--"


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_alignment_and_content(self):
        rows = [
            {"name": "regular", "max": 4698111, "mean": 50516.79},
            {"name": "WaW+WaP", "max": 310, "mean": 189.0},
        ]
        rendered = format_table(rows)
        lines = rendered.splitlines()
        assert "name" in lines[0] and "max" in lines[0]
        assert "regular" in rendered and "WaW+WaP" in rendered
        # Large floats fall back to scientific notation, plain ones do not.
        assert "189.00" in rendered

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        rendered = format_table(rows, columns=["b"])
        assert "a" not in rendered.splitlines()[0]

    def test_missing_cells_render_empty(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        rendered = format_table(rows)
        assert rendered.count("\n") == 3


class TestFormatGrid:
    def test_grid_with_coord_keys(self):
        values = {Coord(x, y): x + y / 10 for x in range(3) for y in range(2)}
        del values[Coord(0, 0)]
        rendered = format_grid(values, 3, 2)
        lines = rendered.splitlines()
        assert len(lines) == 3  # header + 2 rows
        assert "--" in lines[1]  # the removed cell
        assert "y\\x" in lines[0]

    def test_grid_with_tuple_keys(self):
        values = {(x, y): 1.0 for x in range(2) for y in range(2)}
        rendered = format_grid(values, 2, 2)
        assert rendered.count("1.0000") == 4


class TestFormatKeyValues:
    def test_empty(self):
        assert format_key_values({}) == "(empty)"

    def test_alignment(self):
        rendered = format_key_values({"short": 1, "a much longer key": 2.5})
        lines = rendered.splitlines()
        assert lines[0].index(":") == lines[1].index(":")
        assert "2.500" in rendered
