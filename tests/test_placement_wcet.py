"""Tests for placements and the WCET-computation mode (:mod:`repro.manycore`)."""

from __future__ import annotations

import pytest

from repro.core.config import regular_mesh_config, waw_wap_config
from repro.core.ubd import UBDTable
from repro.geometry import Coord, Mesh
from repro.manycore.placement import (
    Placement,
    block_placement,
    diagonal_placement,
    row_placement,
    standard_placements,
)
from repro.manycore.wcet_mode import (
    wcet_of_parallel_workload,
    wcet_of_profile,
)
from repro.workloads.parallel import ParallelWorkload, Phase, ThreadPhaseWork
from repro.workloads.trace import TaskProfile


class TestPlacement:
    def test_assign_and_lookup(self):
        placement = Placement("test")
        placement.assign(0, Coord(1, 1))
        assert placement.node_of(0) == Coord(1, 1)
        assert placement.thread_ids() == [0]
        assert len(placement) == 1

    def test_duplicate_thread_or_node_rejected(self):
        placement = Placement("test")
        placement.assign(0, Coord(1, 1))
        with pytest.raises(ValueError):
            placement.assign(0, Coord(2, 2))
        with pytest.raises(ValueError):
            placement.assign(1, Coord(1, 1))

    def test_unknown_thread_lookup(self):
        with pytest.raises(KeyError):
            Placement("empty").node_of(3)

    def test_validate_checks_mesh_and_forbidden_nodes(self):
        mesh = Mesh(4, 4)
        placement = Placement("bad")
        placement.assign(0, Coord(0, 0))
        with pytest.raises(ValueError):
            placement.validate(mesh, forbidden=[Coord(0, 0)])
        outside = Placement("outside")
        outside.assign(0, Coord(9, 9))
        with pytest.raises(ValueError):
            outside.validate(mesh)

    def test_average_distance(self):
        placement = Placement("two")
        placement.assign(0, Coord(1, 0))
        placement.assign(1, Coord(3, 0))
        assert placement.average_distance_to(Coord(0, 0)) == 2.0


class TestPlacementConstructors:
    def test_block_placement(self):
        mesh = Mesh(8, 8)
        placement = block_placement("block", mesh, origin=Coord(1, 0), width=4, height=4)
        assert len(placement) == 16
        assert all(1 <= node.x <= 4 and 0 <= node.y <= 3 for node in placement.nodes())

    def test_block_placement_skip(self):
        mesh = Mesh(8, 8)
        placement = block_placement(
            "block", mesh, origin=Coord(0, 0), width=2, height=2, skip=[Coord(0, 0)]
        )
        assert len(placement) == 3
        assert Coord(0, 0) not in placement.nodes()

    def test_row_placement(self):
        mesh = Mesh(8, 8)
        placement = row_placement("rows", mesh, rows=[3, 4])
        assert len(placement) == 16
        assert all(node.y in (3, 4) for node in placement.nodes())

    def test_diagonal_placement(self):
        mesh = Mesh(8, 8)
        placement = diagonal_placement("diag", mesh, count=16, skip=[Coord(0, 0)])
        assert len(placement) == 16
        assert Coord(0, 0) not in placement.nodes()
        assert len(set(placement.nodes())) == 16

    def test_standard_placements_properties(self):
        mesh = Mesh(8, 8)
        placements = standard_placements(mesh)
        assert set(placements) == {"P0", "P1", "P2", "P3"}
        for placement in placements.values():
            assert len(placement) == 16
            placement.validate(mesh, forbidden=[Coord(0, 0)])
        # P0 sits closest to the memory controller, the others further away.
        distances = {
            name: p.average_distance_to(Coord(0, 0)) for name, p in placements.items()
        }
        assert distances["P0"] == min(distances.values())

    def test_standard_placements_require_large_mesh(self):
        with pytest.raises(ValueError):
            standard_placements(Mesh(4, 4))


class TestProfileWCET:
    def test_wcet_formula(self):
        config = regular_mesh_config(4)
        table = UBDTable(config)
        profile = TaskProfile(
            name="toy", instructions=10_000, base_cpi=1.0,
            misses_per_kinst=10.0, writebacks_per_kinst=2.0,
        )
        core = Coord(2, 2)
        estimate = wcet_of_profile(profile, core, table)
        entry = table.entry(core)
        assert estimate.compute_cycles == 10_000
        assert estimate.load_cycles == 100 * entry.load_ubd
        assert estimate.eviction_cycles == 20 * entry.eviction_ubd
        assert estimate.total == (
            estimate.compute_cycles + estimate.load_cycles + estimate.eviction_cycles
        )
        assert 0 < estimate.noc_fraction < 1

    def test_memory_bound_profile_has_higher_noc_fraction(self):
        config = regular_mesh_config(4)
        table = UBDTable(config)
        light = TaskProfile(name="light", instructions=10_000, misses_per_kinst=1.0)
        heavy = TaskProfile(name="heavy", instructions=10_000, misses_per_kinst=30.0)
        core = Coord(3, 3)
        assert (
            wcet_of_profile(heavy, core, table).noc_fraction
            > wcet_of_profile(light, core, table).noc_fraction
        )

    def test_far_core_has_higher_wcet_on_regular_mesh(self):
        config = regular_mesh_config(8)
        table = UBDTable(config)
        profile = TaskProfile(name="toy", instructions=50_000, misses_per_kinst=10.0)
        near = wcet_of_profile(profile, Coord(1, 0), table).total
        far = wcet_of_profile(profile, Coord(7, 7), table).total
        assert far > 10 * near


class TestParallelWCET:
    def _workload(self, threads=4):
        workload = ParallelWorkload(name="toy", num_threads=threads, barrier_cycles=50)
        phase = Phase(name="p0")
        for tid in range(threads):
            phase.add(ThreadPhaseWork(tid, compute_cycles=1_000, loads=10 * (tid + 1)))
        workload.add_phase(phase)
        return workload

    def _placement(self, threads=4):
        placement = Placement("near")
        nodes = [Coord(1, 0), Coord(2, 0), Coord(1, 1), Coord(2, 1), Coord(3, 0), Coord(3, 1)]
        for tid in range(threads):
            placement.assign(tid, nodes[tid])
        return placement

    def test_phase_wcet_is_the_slowest_thread(self):
        config = regular_mesh_config(4)
        table = UBDTable(config)
        workload = self._workload()
        placement = self._placement()
        estimate = wcet_of_parallel_workload(workload, placement, table)
        phase = estimate.phases[0]
        assert phase.critical_cycles == max(phase.per_thread.values())
        assert estimate.total == phase.critical_cycles + workload.barrier_cycles
        assert len(estimate.phase_totals()) == 1

    def test_missing_thread_in_placement_rejected(self):
        config = regular_mesh_config(4)
        table = UBDTable(config)
        workload = self._workload(threads=5)
        placement = self._placement(threads=4)
        with pytest.raises(ValueError):
            wcet_of_parallel_workload(workload, placement, table)

    def test_placement_on_memory_controller_rejected(self):
        config = regular_mesh_config(4)
        table = UBDTable(config)
        workload = self._workload(threads=1)
        placement = Placement("bad")
        placement.assign(0, Coord(0, 0))
        with pytest.raises(ValueError):
            wcet_of_parallel_workload(workload, placement, table)

    def test_waw_wap_reduces_parallel_wcet_for_distant_placement(self):
        regular_table = UBDTable(regular_mesh_config(8, max_packet_flits=1))
        waw_table = UBDTable(waw_wap_config(8, max_packet_flits=1))
        workload = self._workload(threads=4)
        placement = Placement("far")
        for tid, node in enumerate([Coord(7, 7), Coord(6, 7), Coord(7, 6), Coord(6, 6)]):
            placement.assign(tid, node)
        regular = wcet_of_parallel_workload(workload, placement, regular_table).total
        waw = wcet_of_parallel_workload(workload, placement, waw_table).total
        assert waw * 10 < regular
