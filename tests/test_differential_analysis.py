"""Differential harness: the vectorized engine vs the scalar reference.

The contract of :mod:`repro.analysis.vector` is *bit-identical integers*
(and bit-identical float means, since both sides feed the same python ints
to :func:`statistics.mean`): the numpy kernels are a pure performance
feature and must never change a single bound.  This file sweeps a wide grid
of design points and asserts exact equality on every surface the engine
exposes -- packet maps, message grids in both directions, all-to-one
summaries, UBD tables and the ``scenario_wctt`` experiment wiring.
"""

from __future__ import annotations

import dataclasses

import pytest

np = pytest.importorskip("numpy")

from repro.analysis.vector import (
    VectorRegularAnalysis,
    VectorWaWWaPAnalysis,
    closed_form_count_arrays,
    evaluate_grid,
    make_vector_analysis,
    vector_supported,
    vector_ubd_entries,
    vector_wctt_map,
    vector_wctt_summary,
    weight_count_arrays,
)
from repro.api.results import unwrap
from repro.api.scenario import Scenario, sweep
from repro.core import (
    FlowSet,
    UBDTable,
    WeightTable,
    make_wctt_analysis,
    regular_mesh_config,
    waw_wap_config,
    wctt_map,
    wctt_summary,
)
from repro.core.config import RouterTiming
from repro.core.ubd import MemoryTiming
from repro.core.wctt_weighted import WaWWaPWCTTAnalysis
from repro.analysis.backends import make_analysis_backend
from repro.experiments import scenario_wctt
from repro.geometry import Coord, Mesh, Port
from repro.topology import ConcentratedMesh

MESHES = [(2, 2), (3, 3), (4, 4), (5, 3), (3, 5), (1, 5), (5, 1)]
CONFIG_FNS = {"regular": regular_mesh_config, "waw_wap": waw_wap_config}


def _destinations(mesh: Mesh):
    """Corner, centre and an edge node -- distinct route structures."""
    picks = {
        Coord(0, 0),
        Coord(mesh.width - 1, mesh.height - 1),
        Coord(mesh.width // 2, mesh.height // 2),
        Coord(mesh.width - 1, 0),
    }
    return sorted(picks)


class TestCountArrays:
    @pytest.mark.parametrize("width,height", MESHES)
    @pytest.mark.parametrize("as_printed", [False, True])
    def test_closed_forms_match_weight_table(self, width, height, as_printed):
        mesh = Mesh(width, height)
        table = WeightTable.from_closed_form(mesh, as_printed=as_printed)
        vec_in, vec_out = closed_form_count_arrays(mesh, as_printed=as_printed)
        tab_in, tab_out = weight_count_arrays(table)
        for port in Port:
            assert (vec_in[port] == tab_in[port]).all(), (port, "in")
            assert (vec_out[port] == tab_out[port]).all(), (port, "out")

    def test_cmesh_scaling_matches_weight_table(self):
        mesh = ConcentratedMesh(3, 3, concentration=4)
        table = WeightTable.from_closed_form(mesh)
        vec_in, vec_out = closed_form_count_arrays(mesh)
        tab_in, tab_out = weight_count_arrays(table)
        for port in Port:
            assert (vec_in[port] == tab_in[port]).all()
            assert (vec_out[port] == tab_out[port]).all()


class TestPacketMaps:
    @pytest.mark.parametrize("width,height", MESHES)
    @pytest.mark.parametrize("design", ["regular", "waw_wap"])
    def test_wctt_map_bit_identical(self, width, height, design):
        config = CONFIG_FNS[design](width, height)
        scalar = make_wctt_analysis(config)
        vector = make_vector_analysis(config)
        for destination in _destinations(config.mesh):
            for packet_flits in (1, config.min_packet_flits if design == "waw_wap" else 7):
                assert vector_wctt_map(
                    vector, destination, packet_flits=packet_flits
                ) == wctt_map(scalar, destination, packet_flits=packet_flits)

    @pytest.mark.parametrize("buffer_depth", [1, 4, 9])
    def test_unregulated_contenders_bit_identical(self, buffer_depth):
        config = waw_wap_config(4, 3, buffer_depth=buffer_depth)
        scalar = WaWWaPWCTTAnalysis(config, regulated_contenders=False)
        vector = VectorWaWWaPAnalysis(config, regulated_contenders=False)
        for destination in _destinations(config.mesh):
            assert vector_wctt_map(vector, destination) == wctt_map(scalar, destination)

    def test_memory_traffic_weights_bit_identical(self):
        config = waw_wap_config(4, 4)
        scalar = WaWWaPWCTTAnalysis.for_memory_traffic(config)
        vector = VectorWaWWaPAnalysis(config, scalar.weights)
        mc = config.memory_controller
        assert vector_wctt_map(vector, mc) == wctt_map(scalar, mc)

    def test_nondefault_timing_bit_identical(self):
        timing = RouterTiming(routing_latency=3, link_latency=2, flit_cycle=2)
        for design, fn in CONFIG_FNS.items():
            config = fn(3, 4, timing=timing, buffer_depth=2)
            scalar = make_wctt_analysis(config)
            vector = make_vector_analysis(config)
            for destination in _destinations(config.mesh):
                assert vector_wctt_map(vector, destination) == wctt_map(
                    scalar, destination
                ), design

    @pytest.mark.parametrize("concentration", [2, 4])
    def test_cmesh_bit_identical(self, concentration):
        base = waw_wap_config(3, 3)
        config = dataclasses.replace(
            base, mesh=ConcentratedMesh(3, 3, concentration=concentration)
        )
        scalar = make_wctt_analysis(config)
        vector = make_vector_analysis(config)
        for destination in _destinations(config.mesh):
            assert vector_wctt_map(vector, destination) == wctt_map(scalar, destination)


class TestMessageGrids:
    @pytest.mark.parametrize("payload", [1, 2, 4, 7, 16])
    def test_waw_message_to_and_from(self, payload):
        config = waw_wap_config(4, 3)
        scalar = make_wctt_analysis(config)
        vector = make_vector_analysis(config)
        mc = config.memory_controller
        to_grid = vector.message_grid_to(mc, payload_flits=payload)
        from_grid = vector.message_grid_from(mc, payload_flits=payload)
        for node in config.mesh.nodes():
            if node == mc:
                continue
            assert int(to_grid[node.y, node.x]) == scalar.wctt_message(
                node, mc, payload_flits=payload
            )
            assert int(from_grid[node.y, node.x]) == scalar.wctt_message(
                mc, node, payload_flits=payload
            )

    @pytest.mark.parametrize("payload", [1, 3, 4, 9])
    def test_regular_message_to(self, payload):
        config = regular_mesh_config(4, 3)
        scalar = make_wctt_analysis(config)
        vector = make_vector_analysis(config)
        for destination in _destinations(config.mesh):
            grid = vector.message_grid_to(destination, payload_flits=payload)
            for node in config.mesh.nodes():
                if node == destination:
                    continue
                assert int(grid[node.y, node.x]) == scalar.wctt_message(
                    node, destination, payload_flits=payload
                )


class TestSummaries:
    @pytest.mark.parametrize("width,height", MESHES)
    @pytest.mark.parametrize("design", ["regular", "waw_wap"])
    def test_summary_bit_identical_including_mean(self, width, height, design):
        config = CONFIG_FNS[design](width, height)
        flows = FlowSet.all_to_one(config.mesh, config.memory_controller)
        scalar = wctt_summary(make_wctt_analysis(config), flows)
        vector = vector_wctt_summary(config)
        # Dataclass equality covers the float mean bit-for-bit.
        assert vector == scalar

    def test_evaluate_grid_matches_scalar_per_point(self):
        grid = sweep(
            Scenario.mesh(4),
            design=("regular", "waw_wap"),
            buffer_depth=(1, 4),
        )
        summaries = evaluate_grid(grid)
        assert len(summaries) == len(grid)
        for scenario, summary in zip(grid, summaries):
            config = scenario.build()
            flows = FlowSet.all_to_one(config.mesh, config.memory_controller)
            assert summary == wctt_summary(make_wctt_analysis(config), flows)


class TestUBDTables:
    @pytest.mark.parametrize("width,height", [(2, 2), (4, 4), (5, 3)])
    def test_auto_equals_scalar_engine(self, width, height):
        config = waw_wap_config(width, height)
        auto = UBDTable(config)
        scalar = UBDTable(config, engine="scalar")
        assert auto.as_dict() == scalar.as_dict()

    def test_vector_entries_match_scalar_build(self):
        config = waw_wap_config(4, 4)
        scalar = UBDTable(config, engine="scalar")
        analysis = WaWWaPWCTTAnalysis.for_memory_traffic(config)
        entries = vector_ubd_entries(
            config,
            weight_table=analysis.weights,
            regulated_contenders=analysis.regulated_contenders,
            service_latency=MemoryTiming().service_latency,
        )
        assert entries == scalar.as_dict()

    def test_regular_design_still_scalar(self):
        # The auto path only applies to WaW+WaP analyses; a regular design
        # must keep producing the reference table.
        config = regular_mesh_config(3, 3)
        assert UBDTable(config).as_dict() == UBDTable(config, engine="scalar").as_dict()

    def test_unsupported_topology_falls_back(self):
        config = Scenario.mesh(4).waw_wap().topology("torus").build()
        assert UBDTable(config).as_dict() == UBDTable(config, engine="scalar").as_dict()


class TestExperimentWiring:
    @pytest.mark.parametrize("design", ["regular", "waw_wap"])
    def test_engine_flag_never_changes_results(self, design):
        scenario = Scenario.mesh(4).design(design)
        results = {
            engine: unwrap(scenario_wctt.run(scenario=scenario, engine=engine))
            for engine in scenario_wctt.ENGINES
        }
        assert results["vector"] == results["scalar"] == results["auto"]

    def test_engine_vector_raises_with_reason_on_torus(self):
        scenario = Scenario.mesh(4).waw_wap().topology("torus")
        with pytest.raises(ValueError, match="wrap-around"):
            scenario_wctt.run(scenario=scenario, engine="vector")

    def test_engine_vector_raises_with_reason_on_yx(self):
        scenario = Scenario.mesh(4).waw_wap().topology("mesh", routing="yx")
        with pytest.raises(ValueError, match="XY routing"):
            scenario_wctt.run(scenario=scenario, engine="vector")

    def test_auto_falls_back_to_scalar_on_unsupported(self):
        scenario = Scenario.mesh(4).waw_wap().topology("torus")
        auto = unwrap(scenario_wctt.run(scenario=scenario, engine="auto"))
        scalar = unwrap(scenario_wctt.run(scenario=scenario, engine="scalar"))
        assert auto == scalar

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            scenario_wctt.run(engine="turbo")


class TestSupportPredicate:
    def test_plain_mesh_supported(self):
        assert vector_supported(waw_wap_config(4, 4)) is None
        assert vector_supported(regular_mesh_config(4, 4)) is None

    def test_reasons_are_descriptive(self):
        torus = Scenario.mesh(4).waw_wap().topology("torus").build()
        assert "wrap-around" in vector_supported(torus)
        yx = Scenario.mesh(4).waw_wap().topology("mesh", routing="yx").build()
        assert "XY" in vector_supported(yx)
        assert "policy" in vector_supported(
            waw_wap_config(4, 4), contender_policy="any_direction"
        )

    def test_overflow_guard_refuses_giant_design(self):
        config = waw_wap_config(4, 4, buffer_depth=2**58)
        reason = vector_supported(config)
        assert reason is not None and "overflow" in reason

    def test_vector_analyses_refuse_unsupported_configs(self):
        torus = Scenario.mesh(4).waw_wap().topology("torus").build()
        with pytest.raises(ValueError, match="not vectorizable"):
            VectorWaWWaPAnalysis(torus)
        yx = Scenario.mesh(4).regular().topology("mesh", routing="yx").build()
        with pytest.raises(ValueError, match="not vectorizable"):
            VectorRegularAnalysis(yx)


class TestAnalysisBackendParity:
    """Refactor safety: the paper analyses routed through AnalysisBackend
    must stay bit-identical to the direct ``core.wctt_*`` calls."""

    BACKEND_FOR_DESIGN = {"regular": "regular", "waw_wap": "weighted"}

    @pytest.mark.parametrize("width,height", MESHES)
    @pytest.mark.parametrize("design", ["regular", "waw_wap"])
    def test_packet_maps_bit_identical(self, width, height, design):
        config = CONFIG_FNS[design](width, height)
        backend = make_analysis_backend(self.BACKEND_FOR_DESIGN[design])
        direct = make_wctt_analysis(config)
        for destination in _destinations(config.mesh):
            assert backend.wctt_map(config, destination) == wctt_map(
                direct, destination
            )

    @pytest.mark.parametrize("width,height", MESHES)
    @pytest.mark.parametrize("design", ["regular", "waw_wap"])
    def test_summaries_bit_identical(self, width, height, design):
        config = CONFIG_FNS[design](width, height)
        backend = make_analysis_backend(self.BACKEND_FOR_DESIGN[design])
        flows = FlowSet.all_to_one(config.mesh, config.memory_controller)
        assert backend.wctt_summary(config) == wctt_summary(
            make_wctt_analysis(config), flows
        )

    @pytest.mark.parametrize("width,height", MESHES)
    @pytest.mark.parametrize("payload", [1, 4])
    def test_messages_bit_identical(self, width, height, payload):
        for design, name in self.BACKEND_FOR_DESIGN.items():
            config = CONFIG_FNS[design](width, height)
            backend = make_analysis_backend(name)
            direct = make_wctt_analysis(config)
            mc = config.memory_controller
            for node in _destinations(config.mesh):
                if node == mc:
                    continue
                assert backend.wctt_message(
                    config, node, mc, payload_flits=payload
                ) == direct.wctt_message(node, mc, payload_flits=payload), design

    @pytest.mark.parametrize("width,height", MESHES)
    @pytest.mark.parametrize("design", ["regular", "waw_wap"])
    def test_vector_backend_matches_paper_backend(self, width, height, design):
        config = CONFIG_FNS[design](width, height)
        paper = make_analysis_backend(self.BACKEND_FOR_DESIGN[design])
        vector = make_analysis_backend("vector")
        assert vector.supports(config) is None
        for destination in _destinations(config.mesh):
            assert vector.wctt_map(config, destination) == paper.wctt_map(
                config, destination
            )
        assert vector.wctt_summary(config) == paper.wctt_summary(config)

    @pytest.mark.parametrize("backend", ["weighted", "vector"])
    def test_ubd_backend_bit_identical(self, backend):
        config = waw_wap_config(4, 4)
        assert (
            UBDTable(config, backend=backend).as_dict() == UBDTable(config).as_dict()
        )

    def test_ubd_regular_backend_bit_identical(self):
        config = regular_mesh_config(3, 3)
        assert (
            UBDTable(config, backend="regular").as_dict() == UBDTable(config).as_dict()
        )
