"""End-to-end tests of the experiment drivers (one per paper table/figure).

Each test runs the experiment (with reduced parameters where the default
would be slow) and asserts the *qualitative claims of the paper* on the
structured results -- who wins, in which region, by roughly which kind of
factor -- rather than exact numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ablation_mechanisms,
    area_overhead,
    avg_performance,
    bound_validation,
    fig2a_packet_size,
    fig2b_placement,
    table1_weights,
    table2_wctt,
    table3_eembc,
)
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.geometry import Coord
from repro.manycore.cache import CacheConfig
from repro.workloads.eembc import autobench_suite
from repro.workloads.pathplanning import PathPlanningConfig, plan_path

#: A fast 3DPP workload shared by the Figure 2 experiment tests.
FAST_PLANNER = PathPlanningConfig(
    dimensions=(12, 12, 4),
    num_threads=16,
    cycles_per_cell_update=300,
    cycles_per_neighbour_check=80,
    cache=CacheConfig(size_bytes=4 * 1024),
    sweeps_per_phase=4,
)


@pytest.fixture(scope="module")
def fast_workload():
    return plan_path(FAST_PLANNER).workload


class TestTable1:
    def test_reproduces_paper_weights(self):
        rows = {(r.in_port, r.out_port): r for r in table1_weights.run()}
        pme_x = rows[("X+", "PME")]
        pme_y = rows[("Y+", "PME")]
        # Regular round-robin: 0.5 each; WaW: 1/3 vs 2/3 (the paper's Table I).
        assert pme_x.round_robin == pytest.approx(0.5)
        assert pme_y.round_robin == pytest.approx(0.5)
        assert pme_x.waw == pytest.approx(1 / 3)
        assert pme_y.waw == pytest.approx(2 / 3)
        assert rows[("PME", "X-")].waw == pytest.approx(1.0)
        assert rows[("PME", "Y-")].waw == pytest.approx(0.5)

    def test_report_renders(self):
        text = table1_weights.report()
        assert "Table I" in text and "PME" in text


class TestTable2:
    def test_scaling_claims(self):
        rows = table2_wctt.run(sizes=(2, 3, 4, 5))
        regular_max = [r.regular.maximum for r in rows]
        waw_max = [r.waw_wap.maximum for r in rows]
        regular_min = [r.regular.minimum for r in rows]
        # Regular max explodes (factor > 4 per size step beyond the smallest).
        assert regular_max[2] > 4 * regular_max[1]
        assert regular_max[3] > 4 * regular_max[2]
        # WaW+WaP max grows slowly (never more than ~2.5x per step).
        for a, b in zip(waw_max, waw_max[1:]):
            assert b < 2.6 * a
        # Regular minimum is flat once the mesh is at least 3x3.
        assert regular_min[1] == regular_min[2] == regular_min[3]
        # At the largest size tested here the proposal wins by a wide margin.
        assert rows[-1].improvement_at_max > 10

    def test_report_includes_paper_reference(self):
        text = table2_wctt.report(table2_wctt.run(sizes=(2, 3)))
        assert "Paper values" in text


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        # A 6x6 mesh and a 4-benchmark subset keep the test quick while
        # preserving the near/far structure of the grid.
        suite = [p for p in autobench_suite() if p.name in ("a2time", "cacheb", "matrix", "rspeed")]
        return table3_eembc.run(mesh_size=6, benchmarks=suite)

    def test_only_near_memory_cores_get_worse(self, result):
        worse = result.cores_worse_than_regular()
        assert 0 < len(worse) < len(result.cores) / 3
        assert all(core.manhattan(Coord(0, 0)) <= 3 for core in worse)

    def test_worst_slowdown_is_moderate(self, result):
        assert result.worst_slowdown() < 2.5

    def test_far_cores_improve_by_orders_of_magnitude(self, result):
        far_corner = Coord(result.mesh_width - 1, result.mesh_height - 1)
        assert result.normalized[far_corner] < 0.05

    def test_per_benchmark_ratios_recorded(self, result):
        assert set(result.per_benchmark) == {"a2time", "cacheb", "matrix", "rspeed"}

    def test_report_renders_grid(self, result):
        text = table3_eembc.report(result)
        assert "Table III" in text and "y\\x" in text


class TestFig2a:
    def test_waw_wap_wins_and_gap_grows_with_packet_size(self, fast_workload):
        points = fig2a_packet_size.run(workload=fast_workload, packet_sizes=(1, 4, 8))
        assert all(p.improvement > 1.0 for p in points)
        by_label = {p.label: p for p in points}
        # The WaW+WaP estimate is independent of the maximum packet size.
        assert by_label["L1"].waw_wap_wcet == by_label["L4"].waw_wap_wcet == by_label["L8"].waw_wap_wcet
        # The regular design degrades as L grows (L4 -> L8).
        assert by_label["L8"].regular_wcet > by_label["L4"].regular_wcet
        assert by_label["L8"].improvement > by_label["L4"].improvement

    def test_report_renders(self, fast_workload):
        text = fig2a_packet_size.report(fig2a_packet_size.run(workload=fast_workload))
        assert "Figure 2(a)" in text


class TestFig2b:
    def test_placement_sensitivity_claims(self, fast_workload):
        points = fig2b_placement.run(workload=fast_workload)
        assert {p.placement for p in points} == {"P0", "P1", "P2", "P3"}
        # The proposal wins for every placement.
        assert all(p.improvement > 1.0 for p in points)
        spread = fig2b_placement.variability(points)
        # Placement is a first-order factor for the regular design...
        assert spread["regular wNoC max/min across placements"] > 5.0
        # ...and nearly irrelevant for WaW+WaP.
        assert spread["WaW+WaP max/min across placements"] < 1.5

    def test_report_renders(self, fast_workload):
        text = fig2b_placement.report(fig2b_placement.run(workload=fast_workload))
        assert "Figure 2(b)" in text


class TestAveragePerformance:
    def test_slowdown_is_small(self):
        points = avg_performance.run(
            mesh_size=3, profile_scale=0.001, parallel_threads=4,
            parallel_phases=2, parallel_loads_per_phase=20,
            parallel_compute_per_phase=1_000,
        )
        assert len(points) == 2
        for point in points:
            # The paper reports < 1 %; allow a conservative margin for the
            # small simulated configurations used in tests.
            assert abs(point.slowdown_percent) < 6.0

    def test_report_renders(self):
        points = avg_performance.run(
            mesh_size=3, profile_scale=0.0005, parallel_threads=4,
            parallel_phases=1, parallel_loads_per_phase=10,
            parallel_compute_per_phase=500,
        )
        assert "Average performance" in avg_performance.report(points)


class TestAreaOverhead:
    def test_under_five_percent_for_evaluated_system(self):
        points = area_overhead.run()
        evaluated = points[0]
        assert evaluated.overhead_percent < 5.0
        assert evaluated.overhead_percent > 0.0

    def test_report_renders(self):
        assert "< 5 %" in area_overhead.report() or "5 %" in area_overhead.report()


class TestAblation:
    def test_each_mechanism_contributes(self):
        rows = {r.variant: r for r in ablation_mechanisms.run(mesh_size=6)}
        regular = next(v for k, v in rows.items() if k.startswith("regular (L=4, merging"))
        wap_only = next(v for k, v in rows.items() if k.startswith("WaP only"))
        waw_only = next(v for k, v in rows.items() if k.startswith("WaW only"))
        combined = next(v for k, v in rows.items() if k.startswith("WaW + WaP"))
        # Each mechanism alone improves the worst case; together they are best.
        assert wap_only.maximum < regular.maximum
        assert waw_only.maximum < regular.maximum
        assert combined.maximum <= min(wap_only.maximum, waw_only.maximum)

    def test_any_direction_policy_is_more_pessimistic(self):
        rows = {r.variant: r for r in ablation_mechanisms.run(mesh_size=5)}
        merging = next(v for k, v in rows.items() if "merging" in k)
        any_dir = next(v for k, v in rows.items() if "any-direction" in k)
        assert any_dir.maximum >= merging.maximum


class TestBoundValidationExperiment:
    def test_all_flows_safe(self):
        rows = bound_validation.run(mesh_sizes=(3,), congestion_cycles=500)
        assert rows
        assert all(r.safe for r in rows)
        assert {r.design for r in rows} == {"regular", "WaW+WaP"}

    def test_report_renders(self):
        rows = bound_validation.run(mesh_sizes=(3,), congestion_cycles=300)
        assert "Bound validation" in bound_validation.report(rows)


class TestRunner:
    def test_experiment_registry_is_complete(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3", "fig2a", "fig2b",
            "avgperf", "area", "ablation", "validation", "reliability_sweep",
            "scenario_wctt", "bound_comparison",
        }
        for name, spec in EXPERIMENTS.items():
            assert spec["description"]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("table42")

    def test_quick_experiment_runs(self):
        text = run_experiment("table1", quick=True)
        assert "Table I" in text

    def test_cli_list_option(self, capsys):
        from repro.experiments.runner import main

        assert main(["--list"]) == 0
        captured = capsys.readouterr()
        assert "table2" in captured.out

    def test_cli_rejects_unknown_experiment(self):
        from repro.experiments.runner import main

        assert main(["bogus"]) == 2
